package corpus

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sync"

	"pathlog/internal/instrument"
	"pathlog/internal/lang"
	"pathlog/internal/replay"
	"pathlog/internal/world"
)

// Partition splits the corpus into at most n shards, round-robin over the
// signature-sorted members, so the assignment is deterministic and the
// shard loads stay within one report of each other. Empty shards are
// dropped (n larger than the member count yields one shard per member).
func (c *Corpus) Partition(n int) [][]*Report {
	if n < 1 {
		n = 1
	}
	if n > len(c.Reports) {
		n = len(c.Reports)
	}
	shards := make([][]*Report, n)
	for i, rep := range c.Reports {
		shards[i%n] = append(shards[i%n], rep)
	}
	return shards
}

// ReportRun is one report's replay outcome as a shard returns it: the
// search result numbers plus the plan-fingerprint-stamped profile the
// central merger verifies.
type ReportRun struct {
	Reproduced bool  `json:"reproduced"`
	TimedOut   bool  `json:"timed_out,omitempty"`
	Cancelled  bool  `json:"cancelled,omitempty"`
	Runs       int   `json:"runs"`
	WallMS     int64 `json:"wall_ms"`
	// Profile is the search's per-branch attribution, stamped with the
	// program hash, plan fingerprint and generation it was measured under.
	Profile *instrument.SearchProfile `json:"profile"`
}

// Runner replays one shard of the corpus. ReplayShard returns exactly one
// run per report, aligned with the input order.
type Runner interface {
	ReplayShard(ctx context.Context, reports []*Report) ([]ReportRun, error)
}

// InProcessRunner replays a shard through the replay engine in this
// process, one report at a time (shards themselves run concurrently; each
// replay's own parallelism comes from Opts.Workers).
type InProcessRunner struct {
	Prog *lang.Program
	Spec *world.Spec
	Opts replay.Options
}

// ReplayShard implements Runner.
func (r *InProcessRunner) ReplayShard(ctx context.Context, reports []*Report) ([]ReportRun, error) {
	out := make([]ReportRun, len(reports))
	for i, rep := range reports {
		if rep.Rec == nil || rep.Rec.Plan == nil {
			return nil, fmt.Errorf("corpus: report %s carries no plan — resolve the corpus against a plan store before replaying", rep.Signature)
		}
		eng := replay.New(r.Prog, r.Spec, world.NewRegistry(), rep.Rec, r.Opts)
		res := eng.Reproduce(ctx)
		out[i] = ReportRun{
			Reproduced: res.Reproduced,
			TimedOut:   res.TimedOut,
			Cancelled:  res.Cancelled,
			Runs:       res.Runs,
			WallMS:     res.Elapsed.Milliseconds(),
			Profile:    res.Profile,
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ProtocolVersion is the shard worker protocol version. A worker refuses a
// request from a different version instead of guessing.
const ProtocolVersion = 1

// ShardIDFor derives a stable identity for one shard of a replay: a short
// hash over the member signatures in shard order. Partitions of one replay
// are disjoint and member signatures are unique within a corpus, so the ID
// uniquely names the shard — the merger uses it to collapse the duplicate
// deliveries work stealing can produce into exactly one merge.
func ShardIDFor(reports []*Report) string {
	h := sha256.New()
	io.WriteString(h, "pathlog-shard-v1\n")
	for _, rep := range reports {
		io.WriteString(h, rep.Signature)
		io.WriteString(h, "\n")
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// ShardRequest is the JSON object a shard worker reads from stdin (or an
// HTTP worker daemon reads from a POST body): the named scenario (program +
// input space), the reports to replay in order, and the replay bounds.
// Reports travel either as envelope file paths (subprocess workers sharing
// a filesystem) or as inline version-2 envelope bodies (remote workers) —
// exactly one of Reports and Envelopes is set. Envelopes must embed their
// plan; the parent resolves stamped-only references against its plan store
// and ships resolved copies, so workers never need store access.
type ShardRequest struct {
	Version  int    `json:"version"`
	Scenario string `json:"scenario"`
	// ShardID names the shard for duplicate-delivery dedupe and transcript
	// correlation; workers echo it back verbatim.
	ShardID string   `json:"shard_id,omitempty"`
	Reports []string `json:"reports,omitempty"`
	// Envelopes carries version-2 recording envelopes inline, one per
	// report, for transports with no shared filesystem.
	Envelopes []json.RawMessage `json:"envelopes,omitempty"`
	MaxRuns   int               `json:"max_runs,omitempty"`
	BudgetMS  int64             `json:"budget_ms,omitempty"`
	Workers   int               `json:"workers,omitempty"`
	PickFIFO  bool              `json:"pick_fifo,omitempty"`
}

// ShardResponse is the JSON object a shard worker writes to stdout (or an
// HTTP worker daemon returns): one run per requested report, in request
// order, plus the program hash the worker replayed on (the merger
// re-verifies every profile anyway; the hash makes a wrong-scenario mistake
// diagnosable from the transcript) and the request's shard ID echoed back.
type ShardResponse struct {
	Version  int         `json:"version"`
	ShardID  string      `json:"shard_id,omitempty"`
	ProgHash string      `json:"prog_hash,omitempty"`
	Results  []ReportRun `json:"results,omitempty"`
	Error    string      `json:"error,omitempty"`
}

// SubprocessRunner replays a shard in a worker subprocess (cmd/shardworker
// or anything speaking the same protocol). Each report is written to a
// temporary version-2 envelope — plan embedded — so the worker needs no
// plan store; the worker only needs the scenario name to rebuild the
// program and input space.
type SubprocessRunner struct {
	// Command is the worker argv, e.g. {"./shardworker"} or
	// {"go", "run", "./cmd/shardworker"}.
	Command []string
	// Scenario names the program and input space (apps.ScenarioByName).
	Scenario string
	// Opts bound each report's replay inside the worker (MaxRuns,
	// TimeBudget, Workers, PickFIFO travel; the rest stay defaults).
	Opts replay.Options
	// MaxResponseBytes caps the worker's stdout; a response past the cap is
	// refused instead of buffered without bound (0 = DefaultMaxResponseBytes).
	MaxResponseBytes int64
}

// DefaultMaxResponseBytes bounds a shard worker's response when the runner
// does not set its own cap.
const DefaultMaxResponseBytes = 64 << 20

// cappedBuffer stores a prefix of what is written to it (up to max+1
// bytes, so overflow is detectable) while counting every byte. It never
// errors, so a worker writing past the cap is not killed mid-pipe — the
// oversize is diagnosed after exit with the true byte count.
type cappedBuffer struct {
	max   int64
	total int64
	buf   bytes.Buffer
}

func (b *cappedBuffer) Write(p []byte) (int, error) {
	b.total += int64(len(p))
	if room := b.max + 1 - int64(b.buf.Len()); room > 0 {
		keep := p
		if int64(len(keep)) > room {
			keep = keep[:room]
		}
		b.buf.Write(keep)
	}
	return len(p), nil
}

// ReplayShard implements Runner. Every failure names the shard and the
// worker command so a fleet transcript pinpoints which worker broke on
// which slice of the corpus.
func (r *SubprocessRunner) ReplayShard(ctx context.Context, reports []*Report) ([]ReportRun, error) {
	if len(r.Command) == 0 {
		return nil, fmt.Errorf("corpus: subprocess runner has no worker command")
	}
	worker := r.Command[0]
	shardID := ShardIDFor(reports)
	tmp, err := os.MkdirTemp("", "pathlog-shard-*")
	if err != nil {
		return nil, fmt.Errorf("corpus: shard scratch dir: %w", err)
	}
	defer os.RemoveAll(tmp)
	req := ShardRequest{
		Version:  ProtocolVersion,
		Scenario: r.Scenario,
		ShardID:  shardID,
		MaxRuns:  r.Opts.MaxRuns,
		BudgetMS: r.Opts.TimeBudget.Milliseconds(),
		Workers:  r.Opts.Workers,
		PickFIFO: r.Opts.PickFIFO,
	}
	for i, rep := range reports {
		if rep.Rec == nil || rep.Rec.Plan == nil {
			return nil, fmt.Errorf("corpus: report %s carries no plan — resolve the corpus against a plan store before replaying", rep.Signature)
		}
		path := filepath.Join(tmp, fmt.Sprintf("%03d.report", i))
		if err := rep.Rec.Save(path); err != nil {
			return nil, fmt.Errorf("corpus: stage report %s for shard worker: %w", rep.Signature, err)
		}
		req.Reports = append(req.Reports, path)
	}
	reqData, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("corpus: encode shard request: %w", err)
	}
	maxResp := r.MaxResponseBytes
	if maxResp <= 0 {
		maxResp = DefaultMaxResponseBytes
	}
	cmd := exec.CommandContext(ctx, r.Command[0], r.Command[1:]...)
	cmd.Stdin = bytes.NewReader(reqData)
	stdout := &cappedBuffer{max: maxResp}
	var stderr bytes.Buffer
	cmd.Stdout = stdout
	cmd.Stderr = &stderr
	runErr := cmd.Run()
	if stdout.total > maxResp {
		return nil, fmt.Errorf("corpus: shard %s: worker %s response is %d bytes, cap is %d — refusing oversized response",
			shardID, worker, stdout.total, maxResp)
	}
	var resp ShardResponse
	if err := json.Unmarshal(stdout.buf.Bytes(), &resp); err != nil {
		if runErr != nil {
			return nil, fmt.Errorf("corpus: shard %s: worker %s failed: %w (stderr: %s)", shardID, worker, runErr, tailString(stderr.Bytes()))
		}
		return nil, fmt.Errorf("corpus: shard %s: worker %s wrote a malformed response (%d bytes): %w",
			shardID, worker, stdout.total, err)
	}
	if resp.Error != "" {
		return nil, fmt.Errorf("corpus: shard %s: worker %s refused shard: %s", shardID, worker, resp.Error)
	}
	if runErr != nil {
		return nil, fmt.Errorf("corpus: shard %s: worker %s failed: %w (stderr: %s)", shardID, worker, runErr, tailString(stderr.Bytes()))
	}
	if resp.Version != ProtocolVersion {
		return nil, fmt.Errorf("corpus: shard %s: worker %s speaks protocol %d, want %d", shardID, worker, resp.Version, ProtocolVersion)
	}
	if resp.ShardID != "" && resp.ShardID != shardID {
		return nil, fmt.Errorf("corpus: shard %s: worker %s echoed shard %s — response belongs to a different shard", shardID, worker, resp.ShardID)
	}
	if len(resp.Results) != len(reports) {
		return nil, fmt.Errorf("corpus: shard %s: worker %s returned %d results for %d reports", shardID, worker, len(resp.Results), len(reports))
	}
	return resp.Results, nil
}

// tailString trims a stderr tail for error messages.
func tailString(b []byte) string {
	const max = 512
	s := string(bytes.TrimSpace(b))
	if len(s) > max {
		s = "..." + s[len(s)-max:]
	}
	return s
}

// Merger is the central merge point of the sharded replay — the one new
// trust boundary corpus refinement introduces. Every incoming profile must
// carry the exact program hash, plan fingerprint and generation the merge
// expects; a foreign or stale profile (wrong program, wrong plan, wrong
// generation) is refused with both identities named, never silently
// blended into the attribution that will steer the next deployment.
type Merger struct {
	// ProgHash, PlanFingerprint and Generation pin what the merge accepts.
	ProgHash        string
	PlanFingerprint string
	Generation      int

	mu         sync.Mutex
	profile    *instrument.SearchProfile
	added      int
	seen       map[string]bool
	duplicates int
}

// NewMerger pins a merge point to one (program, plan, generation)
// identity.
func NewMerger(progHash, planFingerprint string, generation int) *Merger {
	return &Merger{
		ProgHash:        progHash,
		PlanFingerprint: planFingerprint,
		Generation:      generation,
		profile: &instrument.SearchProfile{
			ProgHash:        progHash,
			PlanFingerprint: planFingerprint,
			Generation:      generation,
		},
	}
}

// verifyRun checks one run's profile against the merge identity without
// touching merge state; the refusal messages name both identities.
func (m *Merger) verifyRun(run ReportRun) error {
	p := run.Profile
	if p == nil {
		return fmt.Errorf("corpus: shard run carries no search profile")
	}
	if p.ProgHash != m.ProgHash {
		return fmt.Errorf("corpus: refusing foreign profile: measured on program %s, this merge accepts only %s",
			p.ProgHash, m.ProgHash)
	}
	if p.PlanFingerprint != m.PlanFingerprint {
		return fmt.Errorf("corpus: refusing foreign profile: measured under plan %s, this merge accepts only plan %s",
			p.PlanFingerprint, m.PlanFingerprint)
	}
	if p.Generation != m.Generation {
		return fmt.Errorf("corpus: refusing stale profile: measured at generation %d of plan %s, this merge accepts only generation %d",
			p.Generation, m.PlanFingerprint, m.Generation)
	}
	return nil
}

// Add verifies one report's run against the merge identity and folds its
// profile in at the report's weight.
func (m *Merger) Add(run ReportRun, weight float64) error {
	if err := m.verifyRun(run); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.profile.MergeWeighted(run.Profile, weight); err != nil {
		return err
	}
	m.added++
	return nil
}

// AddShard merges one whole shard's runs (aligned with weights) exactly
// once per shard ID: work stealing can deliver the same shard from two
// workers, and the second delivery must be counted, not blended. Every run
// is verified against the merge identity before any state changes, so a
// refused shard leaves the merge untouched. Returns false with a nil error
// when the shard was already merged (the duplicate path); an empty shard ID
// disables dedupe for the call.
func (m *Merger) AddShard(shardID string, runs []ReportRun, weights []float64) (bool, error) {
	if len(runs) != len(weights) {
		return false, fmt.Errorf("corpus: shard %s: %d runs for %d weights", shardID, len(runs), len(weights))
	}
	for _, run := range runs {
		if err := m.verifyRun(run); err != nil {
			return false, err
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if shardID != "" {
		if m.seen == nil {
			m.seen = make(map[string]bool)
		}
		if m.seen[shardID] {
			m.duplicates++
			return false, nil
		}
	}
	for i, run := range runs {
		if err := m.profile.MergeWeighted(run.Profile, weights[i]); err != nil {
			return false, err
		}
		m.added++
	}
	if shardID != "" {
		m.seen[shardID] = true
	}
	return true, nil
}

// DuplicateDeliveries reports how many already-merged shards were offered
// again — the count of stolen-shard duplicates the merge collapsed.
func (m *Merger) DuplicateDeliveries() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.duplicates
}

// Profile returns the weighted merged profile (the merge identity with
// zero charges when nothing was added).
func (m *Merger) Profile() *instrument.SearchProfile {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.profile
}

// Outcome is a corpus replay's aggregate: the weighted merged profile and
// the per-member results, plus the weighted population statistics the
// balance loop converges on.
type Outcome struct {
	// Profile is the weighted merged attribution across the whole corpus.
	Profile *instrument.SearchProfile
	// Runs holds each member's replay outcome, aligned with
	// Corpus.Reports.
	Runs []ReportRun
	// MeanRuns and MeanWallMS are weighted means over members — the
	// corpus-mean debugging time the balance targets.
	MeanRuns   float64
	MeanWallMS float64
	// MaxRuns is the slowest member's run count.
	MaxRuns int
	// Reproduced counts members whose replay found the bug; Members is the
	// corpus size.
	Reproduced int
	Members    int
	// Shards echoes how many shards performed the replay.
	Shards int
}

// AllReproduced reports whether every member's replay found its bug.
func (o *Outcome) AllReproduced() bool { return o.Reproduced == o.Members }

// Replay fans the corpus out over shards and merges the results through a
// verifying Merger. Every member must carry a resolved plan, and all
// members must share one plan identity (fingerprint and generation) — a
// mixed-generation corpus is refused by name, because profiles from
// different plans must never blend. Shards run concurrently; the merge is
// performed in corpus order (the weighted merge is order-independent, the
// order just keeps transcripts deterministic).
func Replay(ctx context.Context, c *Corpus, shards int, runner Runner) (*Outcome, error) {
	if len(c.Reports) == 0 {
		return nil, fmt.Errorf("corpus: replay of an empty corpus")
	}
	var progHash, fp string
	generation := 0
	for _, rep := range c.Reports {
		if rep.Rec == nil || rep.Rec.Plan == nil {
			return nil, fmt.Errorf("corpus: report %s carries no plan — resolve the corpus against a plan store before replaying", rep.Signature)
		}
		rfp := rep.Rec.Plan.Fingerprint()
		if fp == "" {
			fp = rfp
			progHash = rep.Rec.Plan.ProgHash
			generation = rep.Rec.Plan.Generation
			continue
		}
		if rfp != fp {
			return nil, fmt.Errorf("corpus: mixed plans in one corpus: report %s was taken under plan %s (generation %d), corpus replays under plan %s (generation %d) — re-record stale reports under the deployed plan",
				rep.Signature, rfp, rep.Rec.Plan.Generation, fp, generation)
		}
	}
	parts := c.Partition(shards)
	results := make([][]ReportRun, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i := range parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = runner.ReplayShard(ctx, parts[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("corpus: shard %d: %w", i, err)
		}
	}
	// Re-align shard results with the corpus's report order. Keyed by
	// member identity (the *Report), not by signature: a rebound corpus
	// can legitimately hold two members whose re-recorded evidence became
	// byte-identical, and signature keying would silently drop one run.
	byRep := make(map[*Report]ReportRun, len(c.Reports))
	for i, part := range parts {
		for j, rep := range part {
			byRep[rep] = results[i][j]
		}
	}
	// Merge whole shards under their shard IDs so a duplicate delivery
	// (possible once runners steal work) collapses structurally, then walk
	// the corpus order for the weighted population statistics. The merge is
	// performed in partition order; partitions are deterministic, so
	// transcripts stay reproducible.
	merger := NewMerger(progHash, fp, generation)
	out := &Outcome{Members: len(c.Reports), Shards: len(parts)}
	for i, part := range parts {
		weights := make([]float64, len(part))
		for j, rep := range part {
			weights[j] = rep.Weight
		}
		if _, err := merger.AddShard(ShardIDFor(part), results[i], weights); err != nil {
			return nil, fmt.Errorf("corpus: shard %d: %w", i, err)
		}
	}
	totalW := 0.0
	for _, rep := range c.Reports {
		run := byRep[rep]
		out.Runs = append(out.Runs, run)
		totalW += rep.Weight
		out.MeanRuns += rep.Weight * float64(run.Runs)
		out.MeanWallMS += rep.Weight * float64(run.WallMS)
		if run.Runs > out.MaxRuns {
			out.MaxRuns = run.Runs
		}
		if run.Reproduced {
			out.Reproduced++
		}
	}
	if totalW > 0 {
		out.MeanRuns /= totalW
		out.MeanWallMS /= totalW
	}
	out.Profile = merger.Profile()
	return out, nil
}
