package corpus

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"pathlog/internal/instrument"
	"pathlog/internal/lang"
	"pathlog/internal/replay"
	"pathlog/internal/trace"
	"pathlog/internal/vm"
)

// fixedProgHash mirrors the store tests' deterministic program identity.
const fixedProgHash = "00112233445566778899aabbccddeeff"

// testPlan is a deterministic hand-built plan for corpus fixtures.
func testPlan() *instrument.Plan {
	return &instrument.Plan{
		Strategy:     "dynamic",
		Instrumented: map[lang.BranchID]bool{1: true, 4: true},
		ProgHash:     fixedProgHash,
	}
}

// testRec builds a deterministic recording: the trace bytes and crash line
// are the identity knobs (different traces → different signatures).
func testRec(bits byte, line int) *replay.Recording {
	plan := testPlan()
	return &replay.Recording{
		Plan:        plan,
		Trace:       trace.FromBytes([]byte{bits}, 6),
		Crash:       vm.CrashInfo{Kind: vm.CrashKind(1), Pos: lang.Pos{Unit: "u.mc", Line: line, Col: 2}, Code: 7},
		Fingerprint: plan.Fingerprint(),
		ProgHash:    fixedProgHash,
	}
}

// refTime is the fixture's newest observation time.
var refTime = time.Unix(1_700_000_000, 0).UTC()

// fixtureMembers: three duplicates of one report at the reference time,
// one distinct report an hour older.
func fixtureMembers() []Member {
	return []Member{
		{Rec: testRec(0b101, 10), ModTime: refTime.Add(-30 * time.Minute), Path: "a1.report"},
		{Rec: testRec(0b101, 10), ModTime: refTime, Path: "a2.report"},
		{Rec: testRec(0b101, 10), ModTime: refTime.Add(-10 * time.Minute), Path: "a3.report"},
		{Rec: testRec(0b111, 20), ModTime: refTime.Add(-time.Hour), Path: "b.report"},
	}
}

func TestCorpusDedupAndWeights(t *testing.T) {
	c, err := Build(fixtureMembers(), Options{HalfLife: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Reports) != 2 {
		t.Fatalf("dedup produced %d members, want 2", len(c.Reports))
	}
	var freq, solo *Report
	for _, rep := range c.Reports {
		if rep.Count == 3 {
			freq = rep
		} else if rep.Count == 1 {
			solo = rep
		}
	}
	if freq == nil || solo == nil {
		t.Fatalf("counts wrong: %+v", c.Reports)
	}
	if !freq.Newest.Equal(refTime) {
		t.Errorf("duplicate group's newest = %v, want %v", freq.Newest, refTime)
	}
	if len(freq.Paths) != 3 || freq.Paths[0] != "a1.report" {
		t.Errorf("paths not collected/sorted: %v", freq.Paths)
	}
	// raw = [3·2⁰, 1·2⁻¹] = [3, 0.5]; normalized to mean 1 over 2 members.
	if freq.Weight != 1.714286 || solo.Weight != 0.285714 {
		t.Errorf("weights = %g / %g, want 1.714286 / 0.285714", freq.Weight, solo.Weight)
	}
	if got := c.Latest(); got.Signature != freq.Signature {
		t.Errorf("Latest picked %s, want the reference-time member", got.Signature)
	}
}

func TestCorpusDeterminism(t *testing.T) {
	members := fixtureMembers()
	a, err := Build(members, Options{HalfLife: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	// Reversed offer order: identical corpus.
	rev := make([]Member, 0, len(members))
	for i := len(members) - 1; i >= 0; i-- {
		rev = append(rev, members[i])
	}
	b, err := Build(rev, Options{HalfLife: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if a.Identity() != b.Identity() {
		t.Errorf("identity depends on member order: %s vs %s", a.Identity(), b.Identity())
	}
	if !reflect.DeepEqual(a.Manifest(), b.Manifest()) {
		t.Errorf("manifest depends on member order:\n%+v\n%+v", a.Manifest(), b.Manifest())
	}

	// Ingest from disk, twice: identical corpus both times, matching the
	// in-memory build (weights come from mtimes, not the wall clock).
	dir := t.TempDir()
	for _, m := range fixtureMembers() {
		path := filepath.Join(dir, m.Path)
		if err := m.Rec.Save(path); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(path, m.ModTime, m.ModTime); err != nil {
			t.Fatal(err)
		}
	}
	in1, err := Ingest(dir, Options{HalfLife: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	in2, err := Ingest(dir, Options{HalfLife: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if in1.Identity() != a.Identity() || in2.Identity() != a.Identity() {
		t.Errorf("ingest identity drifted: %s / %s vs %s", in1.Identity(), in2.Identity(), a.Identity())
	}
	for i, rep := range in1.Reports {
		if rep.Weight != in2.Reports[i].Weight || rep.Weight != a.Reports[i].Weight {
			t.Errorf("member %d weight not deterministic: %g / %g / %g",
				i, rep.Weight, in2.Reports[i].Weight, a.Reports[i].Weight)
		}
	}
}

func TestCorpusManifestGolden(t *testing.T) {
	c, err := Build(fixtureMembers(), Options{HalfLife: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), ManifestName)
	if err := c.SaveManifest(path); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "manifest_golden.json")
	if os.Getenv("CORPUS_REGEN_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden missing (regenerate with CORPUS_REGEN_GOLDEN=1): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("manifest drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestCorpusAttachInputAndRebind(t *testing.T) {
	c, err := Build(fixtureMembers(), Options{HalfLife: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	user := map[string][]byte{"arg0": []byte("K")}
	if err := c.AttachInput("a2.report", user); err != nil {
		t.Fatal(err)
	}
	if err := c.AttachInput("missing.report", user); err == nil {
		t.Error("AttachInput accepted an unknown path")
	}
	var weights []float64
	for _, rep := range c.Reports {
		weights = append(weights, rep.Weight)
	}
	recs := []*replay.Recording{testRec(0b001, 30), testRec(0b011, 31)}
	re, err := c.Rebind(recs)
	if err != nil {
		t.Fatal(err)
	}
	var reWeights []float64
	total := 0
	for _, rep := range re.Reports {
		reWeights = append(reWeights, rep.Weight)
		total += rep.Count
	}
	// Weights and frequencies carry over (sorted by the new signatures, so
	// compare as multisets via sums).
	sum := func(ws []float64) (s float64) {
		for _, w := range ws {
			s += w
		}
		return
	}
	if sum(weights) != sum(reWeights) || total != 4 {
		t.Errorf("rebind lost weight/frequency: %v -> %v (count %d)", weights, reWeights, total)
	}
	if re.Identity() == c.Identity() {
		t.Error("rebound corpus kept the old identity despite new evidence")
	}
	if _, err := c.Rebind(recs[:1]); err == nil {
		t.Error("Rebind accepted a misaligned recording slice")
	}
}

func TestMergerRefusesForeignAndStale(t *testing.T) {
	m := NewMerger(fixedProgHash, "aabb", 2)
	mk := func(prog, fp string, gen int) ReportRun {
		return ReportRun{Profile: &instrument.SearchProfile{
			ProgHash: prog, PlanFingerprint: fp, Generation: gen, Runs: 1,
		}}
	}
	if err := m.Add(ReportRun{}, 1); err == nil {
		t.Error("run without a profile accepted")
	}
	if err := m.Add(mk("ffee", "aabb", 2), 1); err == nil {
		t.Error("foreign program accepted")
	}
	if err := m.Add(mk(fixedProgHash, "ccdd", 2), 1); err == nil {
		t.Error("foreign plan accepted")
	}
	if err := m.Add(mk(fixedProgHash, "aabb", 1), 1); err == nil {
		t.Error("stale generation accepted")
	}
	if err := m.Add(mk(fixedProgHash, "aabb", 2), 1.5); err != nil {
		t.Errorf("matching profile refused: %v", err)
	}
	if got := m.Profile(); got.Runs != 2 { // 1 scaled by 1.5, rounded
		t.Errorf("merged runs = %d, want 2", got.Runs)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	members := []Member{}
	for i := 0; i < 5; i++ {
		members = append(members, Member{Rec: testRec(byte(i), 40+i), ModTime: refTime})
	}
	c, err := Build(members, Options{})
	if err != nil {
		t.Fatal(err)
	}
	parts := c.Partition(2)
	if len(parts) != 2 || len(parts[0]) != 3 || len(parts[1]) != 2 {
		t.Fatalf("partition shape: %d/%d", len(parts[0]), len(parts[1]))
	}
	again := c.Partition(2)
	for i := range parts {
		for j := range parts[i] {
			if parts[i][j].Signature != again[i][j].Signature {
				t.Fatal("partition is not deterministic")
			}
		}
	}
	if wide := c.Partition(10); len(wide) != 5 {
		t.Errorf("partition wider than the corpus kept %d shards, want 5", len(wide))
	}
	if one := c.Partition(0); len(one) != 1 || len(one[0]) != 5 {
		t.Errorf("partition(0) = %d shards", len(one))
	}
}

func TestWeightFloorNeverZero(t *testing.T) {
	// A member many half-lives older than the newest report down-weights
	// to the 1e-6 floor, never to zero — a zero weight would be refused
	// by the weighted merge and fail the whole replay.
	members := []Member{
		{Rec: testRec(0b101, 10), ModTime: refTime},
		{Rec: testRec(0b111, 20), ModTime: refTime.Add(-30 * 24 * time.Hour)},
	}
	c, err := Build(members, Options{}) // default 24h half-life: decay 2^-720
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range c.Reports {
		if rep.Weight <= 0 {
			t.Fatalf("member %s weighted %g", rep.Signature, rep.Weight)
		}
	}
	// The floor weight is mergeable.
	m := NewMerger(fixedProgHash, testPlan().Fingerprint(), 0)
	run := ReportRun{Profile: &instrument.SearchProfile{
		ProgHash: fixedProgHash, PlanFingerprint: testPlan().Fingerprint(), Runs: 3,
	}}
	for _, rep := range c.Reports {
		if err := m.Add(run, rep.Weight); err != nil {
			t.Fatalf("weight %g refused by the merge: %v", rep.Weight, err)
		}
	}
}

// indexRunner returns a distinguishable run per report, keyed by member
// identity, to pin the re-alignment of shard results.
type indexRunner struct {
	runs map[*Report]int
}

func (r *indexRunner) ReplayShard(ctx context.Context, reports []*Report) ([]ReportRun, error) {
	out := make([]ReportRun, len(reports))
	for i, rep := range reports {
		out[i] = ReportRun{
			Reproduced: true,
			Runs:       r.runs[rep],
			Profile: &instrument.SearchProfile{
				ProgHash:        fixedProgHash,
				PlanFingerprint: rep.Rec.Plan.Fingerprint(),
				Runs:            r.runs[rep],
			},
		}
	}
	return out, nil
}

func TestReplayAlignsDuplicateSignatures(t *testing.T) {
	// A rebound corpus can hold two members whose re-recorded evidence
	// became byte-identical (same signature); each member's run must
	// still land on its own row, at its own weight.
	c, err := Build([]Member{
		{Rec: testRec(0b101, 10), ModTime: refTime},
		{Rec: testRec(0b111, 20), ModTime: refTime.Add(-time.Hour)},
	}, Options{HalfLife: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	re, err := c.Rebind([]*replay.Recording{testRec(0b001, 30), testRec(0b001, 30)})
	if err != nil {
		t.Fatal(err)
	}
	if re.Reports[0].Signature != re.Reports[1].Signature {
		t.Fatal("fixture drifted: rebind should produce duplicate signatures")
	}
	runner := &indexRunner{runs: map[*Report]int{re.Reports[0]: 11, re.Reports[1]: 22}}
	out, err := Replay(context.Background(), re, 2, runner)
	if err != nil {
		t.Fatal(err)
	}
	got := []int{out.Runs[0].Runs, out.Runs[1].Runs}
	if got[0] == got[1] {
		t.Errorf("duplicate-signature members collapsed to one run: %v", got)
	}
	if got[0]+got[1] != 33 {
		t.Errorf("shard runs misaligned: %v, want {11,22}", got)
	}
}
