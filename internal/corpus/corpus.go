package corpus

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"pathlog/internal/replay"
)

// ManifestName is the canonical manifest filename inside a corpus
// directory; Ingest skips it (and any dotfile) when reading reports.
const ManifestName = "corpus-manifest.json"

// DefaultHalfLife is the recency half-life when Options does not choose
// one: a report a day older than the newest weighs half as much.
const DefaultHalfLife = 24 * time.Hour

// Options shape corpus construction.
type Options struct {
	// HalfLife is the recency decay half-life (<= 0 selects
	// DefaultHalfLife). Ages are measured against the newest member's
	// mtime, never the wall clock, so weights are a pure function of the
	// ingested file set.
	HalfLife time.Duration
}

// Member is one raw report offered to Build: a loaded recording plus the
// metadata ingestion would have read from its file.
type Member struct {
	// Rec is the loaded recording (possibly stamped-only, Plan == nil).
	Rec *replay.Recording
	// ModTime is the report's observation time (file mtime for ingested
	// reports); it drives the recency decay.
	ModTime time.Time
	// Path names the report's source file; empty for in-memory members.
	Path string
	// Count is an externally supplied frequency for this member: how many
	// duplicate reports it stands for. An intake service dedupes at ingest
	// and hands the corpus one stored report plus its dedupe counter; zero
	// (or negative) means "one report", which keeps directory ingest — where
	// frequency is the file count — working unchanged as the fallback.
	Count int
	// UserBytes optionally carries the user-site input that produced the
	// report, for redeployment loops (Session.CorpusBalance) that must
	// re-record the corpus under a refined plan. Ingested reports never
	// have it — envelopes carry no input bytes by construction.
	UserBytes map[string][]byte
}

// Report is one deduplicated corpus member: a recording plus the weight
// the refinement loop charges its search cost at.
type Report struct {
	// Rec is the member's recording (the representative of its duplicate
	// group; duplicates are byte-identical evidence, so any one stands for
	// all).
	Rec *replay.Recording
	// Signature is the member's content signature: a hash over the crash
	// site, the plan stamp, the program hash, the branch bitvector and the
	// syscall log — everything the developer site can observe. Reports
	// indistinguishable by signature dedupe into one member.
	Signature string
	// Count is the number of duplicate reports deduped into this member
	// (its frequency).
	Count int
	// Newest is the most recent observation time among the duplicates.
	Newest time.Time
	// Weight is the member's deterministic merge weight: frequency scaled
	// by recency decay, normalized so the corpus-wide mean weight is 1.
	Weight float64
	// Paths lists the source files of every duplicate, sorted; empty for
	// in-memory members.
	Paths []string
	// UserBytes is the redeployment input, when known (see Member).
	UserBytes map[string][]byte
}

// Corpus is a deduplicated, weighted report population. Reports are sorted
// by signature, so iteration order, shard assignment and the identity hash
// are deterministic.
type Corpus struct {
	// Reports holds the members in signature order.
	Reports []*Report
	// HalfLife echoes the recency half-life the weights were computed
	// with.
	HalfLife time.Duration
	// Reference is the decay reference time: the newest member's
	// observation time.
	Reference time.Time
}

// Signature computes a recording's content signature. Exported so tools
// (and the shard protocol) can correlate reports with corpus members.
func Signature(rec *replay.Recording) string {
	h := sha256.New()
	io.WriteString(h, "pathlog-report-v1\n")
	progHash := rec.ProgHash
	fp := rec.Fingerprint
	if rec.Plan != nil {
		if progHash == "" {
			progHash = rec.Plan.ProgHash
		}
		if fp == "" {
			fp = rec.Plan.Fingerprint()
		}
	}
	fmt.Fprintf(h, "prog %s\nplan %s\n", progHash, fp)
	fmt.Fprintf(h, "crash %d %s:%d:%d code=%d\n",
		rec.Crash.Kind, rec.Crash.Pos.Unit, rec.Crash.Pos.Line, rec.Crash.Pos.Col, rec.Crash.Code)
	if rec.Trace != nil {
		fmt.Fprintf(h, "trace %d\n", rec.Trace.Len())
		h.Write(rec.Trace.Bytes())
	}
	if rec.SysLog != nil {
		reads, selects := rec.SysLog.Snapshot()
		fmt.Fprintf(h, "\nreads %v selects %v", reads, selects)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// Build assembles a corpus from raw members: duplicates (by content
// signature) collapse into one weighted report. An empty member set is an
// error — there is nothing to refine against.
func Build(members []Member, opts Options) (*Corpus, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("corpus: no reports")
	}
	halfLife := opts.HalfLife
	if halfLife <= 0 {
		halfLife = DefaultHalfLife
	}
	bySig := make(map[string]*Report)
	for i, m := range members {
		if m.Rec == nil {
			return nil, fmt.Errorf("corpus: member %d has no recording", i)
		}
		sig := Signature(m.Rec)
		rep, ok := bySig[sig]
		if !ok {
			rep = &Report{Rec: m.Rec, Signature: sig, Newest: m.ModTime}
			bySig[sig] = rep
		}
		n := m.Count
		if n < 1 {
			n = 1
		}
		rep.Count += n
		if m.ModTime.After(rep.Newest) {
			rep.Newest = m.ModTime
		}
		if m.Path != "" {
			rep.Paths = append(rep.Paths, m.Path)
		}
		if rep.UserBytes == nil {
			rep.UserBytes = m.UserBytes
		}
	}
	c := &Corpus{HalfLife: halfLife}
	for _, rep := range bySig {
		sort.Strings(rep.Paths)
		c.Reports = append(c.Reports, rep)
		if rep.Newest.After(c.Reference) {
			c.Reference = rep.Newest
		}
	}
	sort.Slice(c.Reports, func(i, j int) bool {
		return c.Reports[i].Signature < c.Reports[j].Signature
	})
	c.weigh()
	return c, nil
}

// weigh computes the deterministic member weights: frequency times the
// recency half-life decay (ages measured against the newest member),
// normalized to a corpus-wide mean of 1 and rounded to 1e-6 so manifests
// are byte-stable across platforms. The rounding is floored at 1e-6: a
// member many half-lives older than the newest report is down-weighted to
// the floor, never to zero — a zero weight would be refused by the
// weighted merge and fail the whole replay, and an ancient report is
// still a report.
func (c *Corpus) weigh() {
	raw := make([]float64, len(c.Reports))
	sum := 0.0
	for i, rep := range c.Reports {
		age := c.Reference.Sub(rep.Newest)
		decay := math.Exp2(-float64(age) / float64(c.HalfLife))
		raw[i] = float64(rep.Count) * decay
		sum += raw[i]
	}
	n := float64(len(c.Reports))
	for i, rep := range c.Reports {
		w := math.Round(raw[i]*n/sum*1e6) / 1e6
		if w < 1e-6 {
			w = 1e-6
		}
		rep.Weight = w
	}
}

// Ingest builds a corpus from a directory of recording envelopes (any
// version cmd/record writes, including the stamped-only v3 references of
// store-backed deployments). Every regular file except dotfiles and the
// corpus manifest must load as a recording — a corrupt report is a loud
// error naming the file, not a silent skip. File mtimes drive the recency
// weights.
func Ingest(dir string, opts Options) (*Corpus, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("corpus: ingest %s: %w", dir, err)
	}
	var members []Member
	for _, e := range entries {
		if e.IsDir() || strings.HasPrefix(e.Name(), ".") || e.Name() == ManifestName {
			continue
		}
		path := filepath.Join(dir, e.Name())
		rec, err := replay.LoadRecording(path)
		if err != nil {
			return nil, fmt.Errorf("corpus: ingest %s: %w", path, err)
		}
		info, err := e.Info()
		if err != nil {
			return nil, fmt.Errorf("corpus: ingest %s: %w", path, err)
		}
		members = append(members, Member{Rec: rec, ModTime: info.ModTime(), Path: path})
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("corpus: ingest %s: directory holds no reports", dir)
	}
	return Build(members, opts)
}

// Identity is the corpus's durable identity: a hash over the member
// signatures and their frequencies. Two ingests of the same report set
// agree on it; adding, dropping or duplicating any report changes it.
func (c *Corpus) Identity() string {
	h := sha256.New()
	io.WriteString(h, "pathlog-corpus-v1\n")
	for _, rep := range c.Reports {
		fmt.Fprintf(h, "%s %d\n", rep.Signature, rep.Count)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// TotalWeight sums the member weights (the weighted-mean denominator).
func (c *Corpus) TotalWeight() float64 {
	sum := 0.0
	for _, rep := range c.Reports {
		sum += rep.Weight
	}
	return sum
}

// Latest returns the member observed most recently — the "latest crash" a
// non-corpus refinement loop would have refined against. Ties break toward
// the larger signature so the choice is deterministic.
func (c *Corpus) Latest() *Report {
	var latest *Report
	for _, rep := range c.Reports {
		if latest == nil || rep.Newest.After(latest.Newest) ||
			(rep.Newest.Equal(latest.Newest) && rep.Signature > latest.Signature) {
			latest = rep
		}
	}
	return latest
}

// AttachInput records the user-site input that produced the member whose
// duplicate group contains path, enabling redeployment loops over ingested
// corpora. It errors when no member matches.
func (c *Corpus) AttachInput(path string, user map[string][]byte) error {
	for _, rep := range c.Reports {
		for _, p := range rep.Paths {
			if p == path {
				rep.UserBytes = user
				return nil
			}
		}
	}
	return fmt.Errorf("corpus: no member was ingested from %q", path)
}

// Resolve maps every member's recording through fn (typically a plan-store
// resolution attaching the retained plan to a stamped-only recording) and
// returns a new corpus sharing the members' metadata. Signatures and
// weights are preserved — resolution changes what the developer site knows,
// not what the report is.
func (c *Corpus) Resolve(fn func(*replay.Recording) (*replay.Recording, error)) (*Corpus, error) {
	out := c.clone()
	for i, rep := range c.Reports {
		resolved, err := fn(rep.Rec)
		if err != nil {
			return nil, fmt.Errorf("corpus: report %s: %w", rep.Signature, err)
		}
		out.Reports[i].Rec = resolved
	}
	return out, nil
}

// Rebind returns a new corpus with the members' recordings replaced —
// order-aligned with Reports — keeping each member's frequency, recency
// and weight. This is the redeployment step: after a refined plan is
// deployed and the corpus inputs re-recorded under it, the new recordings
// inherit the old population's weights. Signatures are recomputed (the
// evidence changed), so the rebound corpus has a new identity.
func (c *Corpus) Rebind(recs []*replay.Recording) (*Corpus, error) {
	if len(recs) != len(c.Reports) {
		return nil, fmt.Errorf("corpus: rebind got %d recordings for %d members", len(recs), len(c.Reports))
	}
	out := c.clone()
	for i, rec := range recs {
		if rec == nil {
			return nil, fmt.Errorf("corpus: rebind recording %d is nil", i)
		}
		out.Reports[i].Rec = rec
		out.Reports[i].Signature = Signature(rec)
		out.Reports[i].Paths = nil
	}
	sort.Slice(out.Reports, func(i, j int) bool {
		return out.Reports[i].Signature < out.Reports[j].Signature
	})
	return out, nil
}

// clone copies the corpus and its report structs (recordings are shared).
func (c *Corpus) clone() *Corpus {
	out := &Corpus{HalfLife: c.HalfLife, Reference: c.Reference}
	out.Reports = make([]*Report, len(c.Reports))
	for i, rep := range c.Reports {
		cp := *rep
		out.Reports[i] = &cp
	}
	return out
}

// ManifestReport is one member's row in the corpus manifest.
type ManifestReport struct {
	Signature       string   `json:"signature"`
	Count           int      `json:"count"`
	NewestUnix      int64    `json:"newest_unix"`
	Weight          float64  `json:"weight"`
	ProgHash        string   `json:"prog_hash,omitempty"`
	PlanFingerprint string   `json:"plan_fingerprint,omitempty"`
	Generation      int      `json:"generation,omitempty"`
	TraceBits       int64    `json:"trace_bits"`
	Crash           string   `json:"crash"`
	Paths           []string `json:"paths,omitempty"`
}

// Manifest is the corpus's JSON rendering: identity, weighting parameters
// and one row per member. The layout is pinned by a golden file.
type Manifest struct {
	Version       int              `json:"version"`
	Identity      string           `json:"identity"`
	HalfLifeMS    int64            `json:"half_life_ms"`
	ReferenceUnix int64            `json:"reference_unix"`
	Reports       []ManifestReport `json:"reports"`
}

// Manifest renders the corpus for inspection and artifacts.
func (c *Corpus) Manifest() *Manifest {
	m := &Manifest{
		Version:       1,
		Identity:      c.Identity(),
		HalfLifeMS:    c.HalfLife.Milliseconds(),
		ReferenceUnix: c.Reference.Unix(),
	}
	for _, rep := range c.Reports {
		row := ManifestReport{
			Signature:  rep.Signature,
			Count:      rep.Count,
			NewestUnix: rep.Newest.Unix(),
			Weight:     rep.Weight,
			ProgHash:   rep.Rec.ProgHash,
			Crash:      rep.Rec.Crash.Site(),
			Paths:      rep.Paths,
		}
		if rep.Rec.Trace != nil {
			row.TraceBits = rep.Rec.Trace.Len()
		}
		fp := rep.Rec.Fingerprint
		if rep.Rec.Plan != nil {
			if fp == "" {
				fp = rep.Rec.Plan.Fingerprint()
			}
			if row.ProgHash == "" {
				row.ProgHash = rep.Rec.Plan.ProgHash
			}
			row.Generation = rep.Rec.Plan.Generation
		}
		row.PlanFingerprint = fp
		m.Reports = append(m.Reports, row)
	}
	return m
}

// SaveManifest writes the manifest to path as indented JSON.
func (c *Corpus) SaveManifest(path string) error {
	data, err := json.MarshalIndent(c.Manifest(), "", "  ")
	if err != nil {
		return fmt.Errorf("corpus: encode manifest: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}
