package corpus

import (
	"context"
	"os/exec"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"pathlog/internal/instrument"
)

// hardeningCorpus builds a two-member corpus for the subprocess error
// tests: the worker never actually replays it (every stub fails first),
// but staging and the shard ID need real reports.
func hardeningCorpus(t *testing.T) []*Report {
	t.Helper()
	c, err := Build([]Member{
		{Rec: testRec(0b101, 10), ModTime: refTime},
		{Rec: testRec(0b111, 20), ModTime: refTime.Add(-time.Hour)},
	}, Options{HalfLife: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	return c.Reports
}

// TestSubprocessRunnerErrorIdentity pins the hardened error surface: a
// worker that exits nonzero, writes truncated JSON, balloons its response,
// refuses the shard, or answers for the wrong protocol or shard must fail
// with the shard ID and the worker identity in the message — a fleet
// transcript has to say which worker broke on which slice of the corpus.
func TestSubprocessRunnerErrorIdentity(t *testing.T) {
	if _, err := exec.LookPath("sh"); err != nil {
		t.Skipf("sh unavailable: %v", err)
	}
	reports := hardeningCorpus(t)
	shardID := ShardIDFor(reports)

	cases := []struct {
		name    string
		script  string
		maxResp int64
		want    []string
	}{
		{
			name:   "nonzero exit",
			script: "echo boom >&2; exit 3",
			want: []string{
				"corpus: shard " + shardID, "worker sh failed", "exit status 3", "boom",
			},
		},
		{
			name:   "truncated stdout JSON",
			script: `printf '{"version":1,"results":[{'`,
			want: []string{
				"corpus: shard " + shardID, "worker sh wrote a malformed response (25 bytes)",
			},
		},
		{
			name:    "oversized response",
			script:  "head -c 200 /dev/zero | tr '\\0' 'x'",
			maxResp: 64,
			want: []string{
				"corpus: shard " + shardID, "worker sh response is 200 bytes, cap is 64",
				"refusing oversized response",
			},
		},
		{
			name:   "worker refuses shard",
			script: `printf '{"version":1,"error":"unknown scenario \"nope\""}'`,
			want: []string{
				"corpus: shard " + shardID, `worker sh refused shard: unknown scenario "nope"`,
			},
		},
		{
			name:   "wrong protocol version",
			script: `printf '{"version":9,"results":[{},{}]}'`,
			want: []string{
				"corpus: shard " + shardID, "worker sh speaks protocol 9, want 1",
			},
		},
		{
			name:   "wrong shard echoed",
			script: `printf '{"version":1,"shard_id":"beef","results":[{},{}]}'`,
			want: []string{
				"corpus: shard " + shardID, "worker sh echoed shard beef",
				"response belongs to a different shard",
			},
		},
		{
			name:   "wrong result count",
			script: `printf '{"version":1,"results":[{}]}'`,
			want: []string{
				"corpus: shard " + shardID, "worker sh returned 1 results for 2 reports",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			r := &SubprocessRunner{
				Command:          []string{"sh", "-c", tc.script},
				Scenario:         "userver-exp3",
				MaxResponseBytes: tc.maxResp,
			}
			_, err := r.ReplayShard(ctx, reports)
			if err == nil {
				t.Fatal("broken worker produced no error")
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q\n  missing %q", err, want)
				}
			}
		})
	}
}

// TestShardIDForIsStable pins the shard identity: a function of the member
// signatures in order, stable across processes (the remote worker echoes
// it back, the merger dedupes on it).
func TestShardIDForIsStable(t *testing.T) {
	reports := hardeningCorpus(t)
	a, b := ShardIDFor(reports), ShardIDFor(reports)
	if a != b || a == "" {
		t.Fatalf("shard ID unstable: %q vs %q", a, b)
	}
	if rev := ShardIDFor([]*Report{reports[1], reports[0]}); rev == a {
		t.Fatal("shard ID ignores member order")
	}
	if sub := ShardIDFor(reports[:1]); sub == a {
		t.Fatal("shard ID ignores membership")
	}
}

// mergeRun builds a run acceptable to a merger pinned to
// (fixedProgHash, "aabb", 2).
func mergeRun(runs int) ReportRun {
	return ReportRun{Profile: &instrument.SearchProfile{
		ProgHash: fixedProgHash, PlanFingerprint: "aabb", Generation: 2, Runs: runs,
	}}
}

// TestMergerAddShardDedupes: the same shard delivered twice — the exact
// shape a stolen-then-unstolen duplicate produces — must merge exactly
// once, with the duplicate counted, and a refused shard must leave the
// merge untouched and the shard unmarked (a valid retry still merges).
func TestMergerAddShardDedupes(t *testing.T) {
	m := NewMerger(fixedProgHash, "aabb", 2)
	runs := []ReportRun{mergeRun(1), mergeRun(1)}
	weights := []float64{1, 1}

	merged, err := m.AddShard("shard-a", runs, weights)
	if err != nil || !merged {
		t.Fatalf("first delivery: merged=%v err=%v", merged, err)
	}
	merged, err = m.AddShard("shard-a", runs, weights)
	if err != nil {
		t.Fatalf("duplicate delivery errored: %v", err)
	}
	if merged {
		t.Fatal("duplicate delivery merged twice")
	}
	if got := m.DuplicateDeliveries(); got != 1 {
		t.Fatalf("DuplicateDeliveries = %d, want 1", got)
	}
	if got := m.Profile().Runs; got != 2 {
		t.Fatalf("merged Runs = %d, want 2 (one delivery of two unit runs)", got)
	}

	// A shard with one bad run is refused atomically: nothing merged, not
	// marked seen.
	bad := []ReportRun{mergeRun(1), {Profile: &instrument.SearchProfile{
		ProgHash: "ffee", PlanFingerprint: "aabb", Generation: 2, Runs: 1,
	}}}
	if _, err := m.AddShard("shard-b", bad, weights); err == nil {
		t.Fatal("foreign profile accepted inside a shard")
	}
	if got := m.Profile().Runs; got != 2 {
		t.Fatalf("refused shard mutated the merge: Runs = %d, want 2", got)
	}
	merged, err = m.AddShard("shard-b", runs, weights)
	if err != nil || !merged {
		t.Fatalf("retry after refusal: merged=%v err=%v", merged, err)
	}

	if _, err := m.AddShard("shard-c", runs, []float64{1}); err == nil {
		t.Fatal("runs/weights length mismatch accepted")
	}
}

// TestMergerConcurrentStolenDuplicates races many duplicate deliveries of
// the same shards against the merger under -race: every shard must merge
// exactly once no matter how many workers answered, and the losers must
// all be counted.
func TestMergerConcurrentStolenDuplicates(t *testing.T) {
	const (
		shards     = 8
		deliveries = 4 // workers racing to deliver each shard
	)
	m := NewMerger(fixedProgHash, "aabb", 2)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		shardID := ShardIDFor(nil) + string(rune('a'+s))
		for d := 0; d < deliveries; d++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := m.AddShard(shardID, []ReportRun{mergeRun(1)}, []float64{1}); err != nil {
					t.Errorf("shard %s: %v", shardID, err)
				}
			}()
		}
	}
	wg.Wait()
	if got := m.Profile().Runs; got != shards {
		t.Fatalf("merged Runs = %d, want %d (each shard exactly once)", got, shards)
	}
	if got := m.DuplicateDeliveries(); got != shards*(deliveries-1) {
		t.Fatalf("DuplicateDeliveries = %d, want %d", got, shards*(deliveries-1))
	}
}

// TestReplayProfileUnchangedByAddShard guards the refactor of Replay's
// merge loop (per-report Add → per-shard AddShard): the merged profile
// must be what per-report adds produce.
func TestReplayProfileUnchangedByAddShard(t *testing.T) {
	c, err := Build([]Member{
		{Rec: testRec(0b101, 10), ModTime: refTime},
		{Rec: testRec(0b111, 20), ModTime: refTime.Add(-time.Hour)},
		{Rec: testRec(0b011, 30), ModTime: refTime.Add(-2 * time.Hour)},
	}, Options{HalfLife: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	runner := &indexRunner{runs: map[*Report]int{}}
	for i, rep := range c.Reports {
		runner.runs[rep] = i + 1
	}
	out, err := Replay(context.Background(), c, 2, runner)
	if err != nil {
		t.Fatal(err)
	}
	want := NewMerger(fixedProgHash, testPlan().Fingerprint(), 0)
	parts := c.Partition(2)
	for _, part := range parts {
		for _, rep := range part {
			if err := want.Add(ReportRun{Profile: &instrument.SearchProfile{
				ProgHash:        fixedProgHash,
				PlanFingerprint: rep.Rec.Plan.Fingerprint(),
				Runs:            runner.runs[rep],
			}}, rep.Weight); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !reflect.DeepEqual(out.Profile, want.Profile()) {
		t.Fatalf("Replay profile diverges from per-report merge:\n got %+v\nwant %+v", out.Profile, want.Profile())
	}
}
