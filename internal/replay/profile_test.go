package replay

import (
	"context"
	"reflect"
	"testing"

	"pathlog/internal/instrument"
	"pathlog/internal/lang"
	"pathlog/internal/world"
)

// sideBranchSrc has a two-branch instrumented chain guarding the crash and
// one extra symbolic branch (a[2] == 'Z') that plans below leave
// uninstrumented: every run that reaches the crash site forks there, so
// the search profile has both case-2b chain attribution (b0, b1) and
// case-1 fork attribution (b2).
const sideBranchSrc = `
int main() {
	char a[8];
	getarg(0, a, 8);
	if (a[0] == 'P') {
		if (a[1] == 'Q') {
			if (a[2] == 'Z') {
				print_str("z");
			}
			crash(1);
		}
	}
	return 0;
}
`

// chainFixture records sideBranchSrc under a plan instrumenting only the
// two chain branches, then points the recorded crash at an unreachable
// site. The resulting search is single-file — at any moment at most one
// pending set exists (a forced case-2b set while walking the chain, then
// one case-1 alternative per crash-site visit) — so every worker count
// claims exactly the same MaxRuns runs in the same order and the profile
// aggregation must come out identical.
func chainFixture(t *testing.T) *fixture {
	t.Helper()
	prog := compile(t, sideBranchSrc)
	if len(prog.Branches) != 3 {
		t.Fatalf("fixture expects 3 branches, got %d", len(prog.Branches))
	}
	spec := &world.Spec{Args: []world.Stream{world.ArgSpec(0, "xxx", 4)}}
	plan := &instrument.Plan{
		Method:       instrument.MethodDynamic,
		Instrumented: map[lang.BranchID]bool{0: true, 1: true},
	}
	rec := record(t, prog, spec, plan, map[string][]byte{"arg0": []byte("PQx")})
	rec.Crash.Pos.Line = 9999 // unreachable: the search can never reproduce
	return &fixture{prog: prog, spec: spec, rec: rec}
}

// runProfiled runs the chain fixture to its MaxRuns budget and returns the
// profile with wall-clock fields zeroed (solver time is real time and can
// never be parity-checked).
func runProfiled(t *testing.T, f *fixture, workers, maxRuns int) *Result {
	t.Helper()
	eng := New(f.prog, f.spec, world.NewRegistry(), f.rec, Options{
		MaxRuns: maxRuns,
		Workers: workers,
	})
	res := eng.Reproduce(context.Background())
	if res.Reproduced {
		t.Fatalf("workers=%d: reproduced an unreachable crash", workers)
	}
	if res.Profile == nil {
		t.Fatalf("workers=%d: no search profile", workers)
	}
	return res
}

func normalizedBranches(p *instrument.SearchProfile) map[lang.BranchID]instrument.BranchCost {
	out := make(map[lang.BranchID]instrument.BranchCost, len(p.Branches))
	for id, bc := range p.Branches {
		c := *bc
		c.SolverTime = 0
		out[id] = c
	}
	return out
}

// TestSearchProfileParityAcrossWorkers is the parallel-accounting check of
// the adaptive loop: the per-branch attribution and the aggregated solver
// counters must not depend on the worker count. Run under -race (CI does),
// this also exercises the popLocked steal path, the take solve-outside-
// the-lock path and the finish merge concurrently.
func TestSearchProfileParityAcrossWorkers(t *testing.T) {
	const maxRuns = 24
	f := chainFixture(t)
	serial := runProfiled(t, f, 1, maxRuns)
	parallel := runProfiled(t, f, 4, maxRuns)

	if serial.Runs != maxRuns || parallel.Runs != maxRuns {
		t.Fatalf("runs: serial %d, parallel %d, want %d (single-file search must exhaust the budget)",
			serial.Runs, parallel.Runs, maxRuns)
	}
	sp, pp := serial.Profile, parallel.Profile
	if sp.Runs != pp.Runs || sp.Aborts != pp.Aborts || sp.Reproduced != pp.Reproduced {
		t.Errorf("profile totals diverge: serial %d/%d/%v, parallel %d/%d/%v",
			sp.Runs, sp.Aborts, sp.Reproduced, pp.Runs, pp.Aborts, pp.Reproduced)
	}
	if sp.Solver != pp.Solver {
		t.Errorf("solver stats diverge:\nserial   %+v\nparallel %+v", sp.Solver, pp.Solver)
	}
	if serial.SolverStats != parallel.SolverStats {
		t.Errorf("result solver stats diverge:\nserial   %+v\nparallel %+v",
			serial.SolverStats, parallel.SolverStats)
	}
	sb, pb := normalizedBranches(sp), normalizedBranches(pp)
	if !reflect.DeepEqual(sb, pb) {
		t.Errorf("per-branch attribution diverges:\nserial   %+v\nparallel %+v", sb, pb)
	}
	// The attribution itself: the uninstrumented side branch (b2) must
	// carry case-1 forks and the aborted ping-pong runs; the instrumented
	// chain (b0, b1) only its forced-direction runs; nobody any wasted
	// runs (the search never had an early winner to waste work against).
	if sb[2].Forks == 0 {
		t.Error("uninstrumented symbolic branch b2 shows no forks")
	}
	if sb[2].AbortedRuns == 0 {
		t.Error("branch b2 shows no aborted runs despite driving the search")
	}
	if sb[0].Forks != 0 || sb[1].Forks != 0 {
		t.Errorf("instrumented branches show case-1 forks: b0=%d b1=%d", sb[0].Forks, sb[1].Forks)
	}
	if sb[0].AbortedRuns != 1 || sb[1].AbortedRuns != 1 {
		t.Errorf("forced-chain attribution: b0=%d b1=%d aborted runs, want 1 each",
			sb[0].AbortedRuns, sb[1].AbortedRuns)
	}
	for id, bc := range sb {
		if bc.WastedRuns != 0 {
			t.Errorf("b%d: %d wasted runs in a search with no winner", id, bc.WastedRuns)
		}
		if bc.SolverCalls == 0 && bc.Forks == 0 {
			t.Errorf("b%d: profiled but never charged", id)
		}
	}
}

// TestProfileOnReproducingSearch checks the profile of a successful search:
// the empty-plan reproduction of twoByteGuard must blame its runs on the
// uninstrumented symbolic branches and stamp the profile with the plan
// identity the refinement loop keys on.
func TestProfileOnReproducingSearch(t *testing.T) {
	prog := compile(t, twoByteGuard)
	spec := &world.Spec{Args: []world.Stream{world.ArgSpec(0, "ab", 4)}}
	plan := &instrument.Plan{
		Method:       instrument.MethodDynamic,
		Instrumented: map[lang.BranchID]bool{},
	}
	rec := record(t, prog, spec, plan, map[string][]byte{"arg0": []byte("PQ")})
	eng := New(prog, spec, world.NewRegistry(), rec, Options{MaxRuns: 500})
	res := eng.Reproduce(context.Background())
	if !res.Reproduced {
		t.Fatalf("not reproduced: %+v", res)
	}
	p := res.Profile
	if p == nil {
		t.Fatal("no profile on a reproducing search")
	}
	if !p.Reproduced || p.Runs != res.Runs || p.Aborts != res.Aborts {
		t.Errorf("profile totals disagree with result: %+v vs runs=%d aborts=%d",
			p, res.Runs, res.Aborts)
	}
	if want := plan.Fingerprint(); p.PlanFingerprint != want {
		t.Errorf("profile fingerprint %s, want %s", p.PlanFingerprint, want)
	}
	var forks int64
	for _, bc := range p.Branches {
		forks += bc.Forks
	}
	if forks == 0 {
		t.Error("empty-plan search profiled no forks")
	}
	top := p.TopBlowup(2, plan.Instrumented)
	if len(top) == 0 {
		t.Error("TopBlowup returned nothing for a multi-run search")
	}
}
