package replay

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pathlog/internal/instrument"
	"pathlog/internal/lang"
	"pathlog/internal/obs"
	"pathlog/internal/oskernel"
	"pathlog/internal/solver"
	"pathlog/internal/sym"
	"pathlog/internal/trace"
	"pathlog/internal/vm"
	"pathlog/internal/world"
)

// Options bound the replay effort. TimeBudget is the paper's one-hour
// cutoff, scaled; exceeding it reports TimedOut (the ∞ entries of Tables 3,
// 5 and 6). The context passed to Reproduce subsumes both bounds: its
// cancellation or deadline stops the search within one run.
type Options struct {
	MaxRuns        int           // 0 means DefaultMaxRuns
	TimeBudget     time.Duration // 0 means no limit
	MaxStepsPerRun int64         // 0 uses the VM default
	MaxPending     int           // pending list cap; 0 means DefaultMaxPending
	// PickFIFO explores pending constraint sets oldest-first instead of the
	// paper's depth-first choice (§3.2), for the pick-heuristic ablation.
	PickFIFO bool
	// Workers is the number of concurrent search workers sharing the pending
	// list. 0 or 1 selects the serial search, which explores exactly the
	// paper's depth-first order; N>1 fans the pending-list exploration out
	// and selects the reproduction with the lowest run sequence number, so
	// the reported result does not depend on goroutine scheduling.
	Workers int
	// OnRun, when set, is called after every completed replay run with the
	// total number of completed runs, in completion order (the engine holds
	// its coordination lock across the call, so counts never go backwards).
	// It must be cheap and must not call back into the engine.
	OnRun func(completed int)
	// Engine builds the execution machine for each run; nil uses the
	// tree-walking interpreter (vm.TreeFactory). Factories must be safe for
	// concurrent calls when Workers > 1.
	Engine vm.Factory
	Solver solver.Options
	// Obs, when set, receives per-run distribution observations
	// (pathlog_replay_run_ns, pathlog_replay_solver_calls_per_run,
	// pathlog_replay_logged_bits_per_run). Each observation is a handful of
	// atomic adds outside the coordination lock, so instrumenting every run
	// does not disturb the search hot path.
	Obs *obs.Registry
}

// Replay histogram layouts: run latency from 1µs up (×4 per bucket),
// solver calls and logged bits from 1 up (×2 per bucket). First
// registration wins, so every engine in the process shares one layout.
var (
	runNSBuckets       = ExpBuckets(1000, 4, 16)
	solverCallsBuckets = ExpBuckets(1, 2, 12)
	loggedBitsBuckets  = ExpBuckets(1, 2, 16)
)

// ExpBuckets re-exports the registry's exponential bucket helper so callers
// configuring replay histograms need not import internal/obs directly.
func ExpBuckets(start, factor float64, n int) []float64 { return obs.ExpBuckets(start, factor, n) }

// Default bounds.
const (
	DefaultMaxRuns    = 2000
	DefaultMaxPending = 100000
)

// Recording is everything the developer has when a bug report arrives: the
// plan (kept at instrumentation time), the branch bitvector, the optional
// syscall-result log, and the crash site from the report.
type Recording struct {
	// Plan is the instrumentation plan the recording was taken under. It is
	// nil on a stamped-only reference recording (envelope version 3, see
	// SaveRef), which carries only the Fingerprint stamp; the developer site
	// resolves the retained plan from a plan store before replaying.
	Plan   *instrument.Plan
	Trace  *trace.Trace
	SysLog *oskernel.SyscallLog // nil when syscall logging was off
	Crash  vm.CrashInfo
	// Fingerprint is the stamp of the plan the recording was taken under
	// (instrument.Plan.Fingerprint). Replay refuses a recording whose stamp
	// disagrees with its plan or program instead of silently searching under
	// the wrong plan. Empty on recordings from before stamping existed.
	Fingerprint string
	// ProgHash identifies the program the recording was taken on
	// (instrument.ProgramHash). It lets a developer site refuse a
	// wrong-program report before plan resolution; empty on envelopes from
	// before it was stamped (the plan's own ProgHash still protects those).
	ProgHash string
}

// Validate checks the recording's internal consistency and its fit to a
// program: every instrumented branch ID must exist in prog, the plan must
// match the fingerprint stamp, and the trace must be present.
func (r *Recording) Validate(prog *lang.Program) error {
	if r.Plan == nil {
		if r.Fingerprint != "" {
			return fmt.Errorf("replay: recording carries no plan, only the fingerprint stamp %s — resolve the retained plan from a plan store (Session WithPlanStore) before replaying",
				r.Fingerprint)
		}
		return fmt.Errorf("replay: recording has no plan")
	}
	if r.Trace == nil {
		return fmt.Errorf("replay: recording has no branch trace")
	}
	if err := r.Plan.ValidateForProgram(prog); err != nil {
		return fmt.Errorf("replay: recording does not fit the program: %w", err)
	}
	if r.Fingerprint != "" {
		if got := r.Plan.Fingerprint(); got != r.Fingerprint {
			return fmt.Errorf("replay: recording was taken under plan %s, but its plan hashes to %s (plan/recording mismatch)",
				r.Fingerprint, got)
		}
	}
	return nil
}

// Result summarizes one reproduction attempt.
type Result struct {
	Reproduced bool
	TimedOut   bool
	// Cancelled reports that the context was cancelled (not merely past its
	// deadline) before a reproduction was found.
	Cancelled bool
	// Workers echoes how many concurrent search workers performed the search.
	Workers int
	Runs    int
	Aborts  int
	Elapsed time.Duration
	// Input is the reproducing assignment (a set of inputs that activates
	// the bug — not necessarily the user's input).
	Input sym.MapAssignment
	// InputBytes is the reproducing input rendered as concrete bytes per
	// stream — the artifact the developer actually uses.
	InputBytes map[string][]byte
	// Stats over the successful run's path, for Tables 4, 7 and 8.
	SymLoggedLocs     int
	SymLoggedExecs    int64
	SymNotLoggedLocs  int
	SymNotLoggedExecs int64
	SolverStats       solver.Stats
	PendingPeak       int
	// Profile attributes the search's cost per branch site: forks, aborted
	// and wasted runs, solver calls and time, aggregated race-free across
	// the worker pool. It is always populated — a search that timed out is
	// exactly the one whose attribution the refinement loop needs.
	Profile *instrument.SearchProfile
}

// Engine reproduces one recorded bug.
type Engine struct {
	prog *lang.Program
	spec *world.Spec
	reg  *world.Registry
	rec  *Recording
	opts Options
	// instrTab is the plan's Instrumented set as a dense table indexed by
	// BranchID, so the per-branch-execution sink avoids a map lookup.
	instrTab []bool
	// Per-run histograms, resolved once at construction when Options.Obs is
	// set; nil otherwise, and the worker loop skips the observations.
	runNS       *obs.Histogram
	solverCalls *obs.Histogram
	loggedBits  *obs.Histogram
}

// New creates a replay engine. The registry may be fresh: variable identity
// is reconstructed deterministically from stream coordinates.
func New(prog *lang.Program, spec *world.Spec, reg *world.Registry, rec *Recording, opts Options) *Engine {
	if opts.MaxRuns <= 0 {
		opts.MaxRuns = DefaultMaxRuns
	}
	if opts.MaxPending <= 0 {
		opts.MaxPending = DefaultMaxPending
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.Engine == nil {
		opts.Engine = vm.TreeFactory
	}
	instrTab := make([]bool, len(prog.Branches))
	for id := range rec.Plan.Instrumented {
		if int(id) < len(instrTab) {
			instrTab[id] = rec.Plan.Instrumented[id]
		}
	}
	e := &Engine{
		prog:     prog,
		spec:     spec,
		reg:      reg,
		rec:      rec,
		opts:     opts,
		instrTab: instrTab,
	}
	if opts.Obs != nil {
		e.runNS = opts.Obs.Histogram("pathlog_replay_run_ns", runNSBuckets)
		e.solverCalls = opts.Obs.Histogram("pathlog_replay_solver_calls_per_run", solverCallsBuckets)
		e.loggedBits = opts.Obs.Histogram("pathlog_replay_logged_bits_per_run", loggedBitsBuckets)
	}
	return e
}

// pendingSet is one unexplored alternative: a prefix of the producing run's
// path condition plus one appended constraint, and the input of that run
// (used as the solver seed). The prefix is stored as a length into the run's
// final constraint slice — runs only append, so the first prefixLen entries
// are exactly the prefix at push time. Materializing lazily keeps pushing
// O(1); the eager-clone alternative is quadratic in path length and stalls
// diff-sized runs.
type pendingSet struct {
	runConds  []sym.Constraint
	prefixLen int
	appended  sym.Constraint
	parent    sym.MapAssignment
	// origin is the branch site whose alternative this set explores: the
	// uninstrumented symbolic branch that forked (case 1) or the
	// instrumented branch whose recorded direction is forced (case 2b).
	// Solver effort and the resulting run's outcome are charged to it in
	// the search profile.
	origin lang.BranchID
}

// maxRunConds caps the collected path condition per replay run; beyond the
// cap, case-1 alternatives are no longer queued (extremely long paths only).
const maxRunConds = 8192

// runSink is the per-run branch sink implementing the four cases.
type runSink struct {
	eng    *Engine
	reader *trace.Reader
	asn    sym.MapAssignment
	conds  []sym.Constraint
	queued []pendingSet

	mismatch bool // a case-2b/3b abort happened

	// Per-location stats over this run (symbolic executions only), indexed
	// by BranchID (IDs are dense resolution indices). Dense tables instead
	// of maps: OnBranch runs once per branch execution and the counters are
	// merged once per run.
	symExecLogged    []int64
	symExecNotLogged []int64
	// forks counts case-1 pending alternatives actually queued per branch
	// site this run — the per-run slice of the search profile.
	forks []int64
	// loggedExecs counts log bits consumed per instrumented branch this run
	// (cases 2 and 3); disagrees counts the bits that contradicted the
	// run's own direction (case-2b forced sets, case-3b mismatch aborts).
	// Together they are the demotion evidence: an instrumented branch with
	// consumed bits and zero disagreements corpus-wide never constrained
	// any search.
	loggedExecs []int64
	disagrees   []int64
}

// OnBranch implements vm.BranchSink.
func (s *runSink) OnBranch(site *lang.BranchSite, cond vm.Value, taken bool) error {
	symbolic := cond.IsSymbolic()
	instrumented := s.eng.instrTab[site.ID]

	switch {
	case symbolic && !instrumented:
		// Case 1: unlogged symbolic branch — both directions are possible.
		s.symExecNotLogged[site.ID]++
		c := sym.Constraint{E: cond.Sym, Truth: taken}
		if len(s.conds) < maxRunConds {
			if s.pushPending(site.ID, c.Negated()) {
				s.forks[site.ID]++
			}
			s.conds = append(s.conds, c)
		}
		return nil

	case symbolic && instrumented:
		// Case 2: the log dictates the direction.
		s.symExecLogged[site.ID]++
		logged, ok := s.reader.Next()
		if !ok {
			// Log exhausted: this run has executed more instrumented
			// branches than the recording — a diverged path. Abort.
			s.mismatch = true
			return vm.ErrAbortRun
		}
		s.loggedExecs[site.ID]++
		if logged == taken {
			if len(s.conds) < maxRunConds {
				s.conds = append(s.conds, sym.Constraint{E: cond.Sym, Truth: taken})
			}
			return nil
		}
		// 2b: force the recorded direction in a pending set and abort. The
		// bit just constrained the search — charge the disagreement.
		s.disagrees[site.ID]++
		s.pushPending(site.ID, sym.Constraint{E: cond.Sym, Truth: logged})
		s.mismatch = true
		return vm.ErrAbortRun

	case !symbolic && instrumented:
		// Case 3: concrete and logged — agreement check only.
		logged, ok := s.reader.Next()
		if !ok || logged != taken {
			// 3b: a wrong earlier turn at an uninstrumented symbolic branch.
			// A consumed-but-contradicted bit pruned this diverged run, so
			// it counts as a disagreement (an exhausted log consumed no bit
			// and charges nothing).
			if ok {
				s.loggedExecs[site.ID]++
				s.disagrees[site.ID]++
			}
			s.mismatch = true
			return vm.ErrAbortRun
		}
		s.loggedExecs[site.ID]++
		return nil

	default:
		// Case 4: concrete, not instrumented.
		return nil
	}
}

// pushPending queues the current prefix plus one appended constraint,
// reporting whether the set was actually queued (the per-run cap can drop
// it).
func (s *runSink) pushPending(origin lang.BranchID, appended sym.Constraint) bool {
	if len(s.queued) >= s.eng.opts.MaxPending {
		return false
	}
	s.queued = append(s.queued, pendingSet{
		prefixLen: len(s.conds),
		appended:  appended,
		parent:    s.asn,
		origin:    origin,
	})
	return true
}

// searchState is the coordination hub shared by the search workers: the
// pending lists, the run budget, and the termination flags. All fields are
// guarded by mu; workers block on cond when every pending list is empty
// while sibling runs that may still queue alternatives are in flight.
//
// Each worker owns a deque of pending sets and explores it depth-first —
// newest last, popped from the back — exactly as the serial engine does.
// A worker whose deque is empty steals from the FRONT (oldest end) of the
// fullest sibling deque. Stealing oldest-first matters: the newest sets on
// a deque are the owner's forced-direction chain (§3.1 case 2b), the
// productive continuation of the recorded path; a naive shared stack lets
// speculative children bury that chain and multiplies the run count.
type searchState struct {
	eng  *Engine
	mu   sync.Mutex
	cond *sync.Cond

	// cache carries engine-private run-acceleration state across the runs of
	// this search (the bytecode VM's linear trace). The seed run writes it:
	// take hands out no other work while the seed is active, so the write
	// completes before any sibling run starts.
	cache *vm.SearchCache

	deques    [][]pendingSet
	pending   int  // total sets across all deques
	seedTaken bool // the initial all-seed run has been claimed
	active    int  // workers holding claimed work (solving or running)
	started   int  // runs claimed against MaxRuns
	completed int  // runs finished
	aborts    int
	peak      int

	done      bool
	timedOut  bool
	cancelled bool

	winner *runOutcome // reproduction with the lowest run sequence number

	// profile accumulates the per-branch search attribution. Every write
	// happens under mu (solver charges in take, run outcomes and fork
	// merges in finish), so the aggregation is identical whether one worker
	// or many performed the search — up to WastedRuns, which only exist
	// when a parallel search keeps running past an early winner.
	profile map[lang.BranchID]*instrument.BranchCost
}

// chargeLocked returns the profile entry for a branch site. Callers hold mu.
func (st *searchState) chargeLocked(id lang.BranchID) *instrument.BranchCost {
	bc, ok := st.profile[id]
	if !ok {
		bc = &instrument.BranchCost{}
		st.profile[id] = bc
	}
	return bc
}

// runOutcome captures everything needed to assemble the result of one
// reproducing run.
type runOutcome struct {
	seq  int
	asn  sym.MapAssignment
	sink *runSink
	w    *world.World
}

// stopOn records why the context fired and wakes every blocked worker.
func (st *searchState) stopOn(err error) {
	if st.done {
		return
	}
	if err == context.DeadlineExceeded {
		st.timedOut = true
	} else {
		st.cancelled = true
	}
	st.done = true
	st.cond.Broadcast()
}

// popLocked removes the next pending set for worker w: depth-first from its
// own deque (or oldest-first under PickFIFO), else stolen from the oldest
// end of the fullest sibling deque. Callers hold mu.
func (st *searchState) popLocked(w int) (pendingSet, bool) {
	if d := st.deques[w]; len(d) > 0 {
		var top pendingSet
		if st.eng.opts.PickFIFO {
			top = d[0]
			st.deques[w] = d[1:]
		} else {
			top = d[len(d)-1]
			st.deques[w] = d[:len(d)-1]
		}
		st.pending--
		return top, true
	}
	victim, best := -1, 0
	for i, d := range st.deques {
		if len(d) > best {
			victim, best = i, len(d)
		}
	}
	if victim < 0 {
		return pendingSet{}, false
	}
	d := st.deques[victim]
	top := d[0]
	st.deques[victim] = d[1:]
	st.pending--
	return top, true
}

// noOrigin marks a run not seeded from any pending set (the initial
// all-seed run); its outcome is charged to no branch.
const noOrigin = lang.BranchID(-1)

// runScratch is one worker's reusable run-to-run buffers. Everything here is
// either copied out of (queued, mbuf) or fully overwritten (counts) before
// the next run touches it, so reuse is invisible to the search; a worker
// whose run wins exits immediately, which keeps the winner's counter views
// intact for the final report.
type runScratch struct {
	vbuf     []int            // variable-ID collection buffer
	mbuf     []sym.Constraint // materialized conjunction handed to Solve
	counts   []int64          // per-branch counter block, zeroed per run
	queued   []pendingSet     // pending-set buffer, drained by finish
	condsCap int              // last run's path length, to size conds exactly
	solves   int              // solver calls take made to produce the claimed run
}

// dequePool recycles deque backing arrays across searches: the pending list
// routinely peaks at tens of thousands of sets, and regrowing it from nil
// every Reproduce call was one of the top allocation sources.
var dequePool = sync.Pool{New: func() any { return []pendingSet(nil) }}

func dequeGet() []pendingSet { return dequePool.Get().([]pendingSet) }

// dequePut clears the slice's full capacity (dropping constraint and
// assignment references) and returns it to the pool.
func dequePut(d []pendingSet) {
	d = d[:cap(d)]
	clear(d)
	dequePool.Put(d[:0]) //nolint:staticcheck // slice value, header alloc is fine
}

// take claims the next run for worker w: the initial seed run, or a pending
// constraint set popped and solved with the worker's own solver. It returns
// ok=false when the search is over (success, budget, cancellation, or
// exhaustion). origin is the branch site the claimed run's pending set
// originated at (noOrigin for the seed run), so finish can charge the run's
// outcome to it.
func (st *searchState) take(ctx context.Context, w int, slv *solver.Solver, sc *runScratch) (asn sym.MapAssignment, seq int, origin lang.BranchID, ok bool) {
	e := st.eng
	sc.solves = 0
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			st.stopOn(err)
		}
		if st.done {
			return nil, 0, noOrigin, false
		}
		if st.started >= e.opts.MaxRuns {
			st.timedOut = true
			st.done = true
			st.cond.Broadcast()
			return nil, 0, noOrigin, false
		}
		if !st.seedTaken {
			st.seedTaken = true
			st.active++
			seq = st.started
			st.started++
			return sym.MapAssignment{}, seq, noOrigin, true
		}
		if top, got := st.popLocked(w); got {
			// Solve outside the lock: the solver is the expensive part, and
			// each worker owns its own instance.
			st.active++
			st.mu.Unlock()
			// Materialize into the worker's buffer: the solver copies what it
			// keeps, so the conjunction need not survive the call.
			conds := append(sc.mbuf[:0], top.runConds[:top.prefixLen]...)
			conds = append(conds, top.appended)
			sc.mbuf = conds
			vars := sym.ConstraintVarIDs(conds, sc.vbuf)
			sc.vbuf = vars
			solveStart := time.Now()
			solved, sat := slv.Solve(solver.Problem{
				Constraints: conds,
				Domains:     e.reg.Domains(vars),
				Seed:        seedForIDs(top.parent, vars),
			})
			solveTime := time.Since(solveStart)
			sc.solves++
			st.mu.Lock()
			st.active--
			// The solving effort is charged to the branch whose alternative
			// demanded it, sat or not — unsat sets are pure search cost.
			bc := st.chargeLocked(top.origin)
			bc.SolverCalls++
			bc.SolverTime += solveTime
			if !sat {
				// This set is dead; siblings waiting on empty deques may
				// now be the last ones standing.
				st.cond.Broadcast()
				continue
			}
			if st.done {
				return nil, 0, noOrigin, false
			}
			if st.started >= e.opts.MaxRuns {
				st.timedOut = true
				st.done = true
				st.cond.Broadcast()
				return nil, 0, noOrigin, false
			}
			st.active++
			seq = st.started
			st.started++
			return mergeAsn(top.parent, solved), seq, top.origin, true
		}
		if st.active == 0 {
			// Nothing pending and nobody who could add work: exhausted.
			st.done = true
			st.cond.Broadcast()
			return nil, 0, noOrigin, false
		}
		st.cond.Wait()
	}
}

// finish accounts for one completed run of worker w: a reproduction closes
// the search (lowest sequence number wins); an abort queues the run's
// alternatives on the worker's own deque. The run's outcome and its case-1
// forks are merged into the search profile under the coordination lock, so
// attribution never races.
func (st *searchState) finish(w, seq int, origin lang.BranchID, asn sym.MapAssignment, sink *runSink, vmRes vm.Result, world *world.World) {
	e := st.eng
	st.mu.Lock()
	st.active--
	st.completed++
	completed := st.completed
	wasDecided := st.done && st.winner != nil
	for id, n := range sink.forks {
		if n != 0 {
			st.chargeLocked(lang.BranchID(id)).Forks += n
		}
	}
	for id, n := range sink.loggedExecs {
		if n != 0 {
			st.chargeLocked(lang.BranchID(id)).LoggedExecs += n
		}
	}
	for id, n := range sink.disagrees {
		if n != 0 {
			st.chargeLocked(lang.BranchID(id)).Disagreements += n
		}
	}
	if e.isReproduction(sink, vmRes) {
		if st.winner == nil || seq < st.winner.seq {
			st.winner = &runOutcome{seq: seq, asn: asn, sink: sink, w: world}
		}
		st.done = true
	} else {
		st.aborts++
		if origin != noOrigin {
			bc := st.chargeLocked(origin)
			bc.AbortedRuns++
			if wasDecided {
				// The search already had its winner when this run came
				// back: speculative work a serial search never starts.
				bc.WastedRuns++
			}
		}
		if !st.done {
			// Queue this run's alternatives; deepest alternatives are pushed
			// last and popped first (depth-first, §3.2). The sets share the
			// run's final constraint slice.
			for i := range sink.queued {
				sink.queued[i].runConds = sink.conds
			}
			if room := e.opts.MaxPending - st.pending; room > 0 {
				q := sink.queued
				if len(q) > room {
					// Keep the newest sets: the run's forced-direction
					// continuation (case 2b) is pushed last and must survive
					// the cap, or the recorded path is lost.
					q = q[len(q)-room:]
				}
				st.deques[w] = append(st.deques[w], q...)
				st.pending += len(q)
			}
			if st.pending > st.peak {
				st.peak = st.pending
			}
		}
	}
	st.cond.Broadcast()
	// Invoked under mu so completion counts arrive in order even with
	// concurrent workers; the callback must be cheap and must not call back
	// into this engine.
	if e.opts.OnRun != nil {
		e.opts.OnRun(completed)
	}
	st.mu.Unlock()
}

// worker claims and executes runs until the search terminates.
func (e *Engine) worker(ctx context.Context, st *searchState, w int, slv *solver.Solver) {
	var sc runScratch
	for {
		asn, seq, origin, ok := st.take(ctx, w, slv, &sc)
		if !ok {
			return
		}
		var runStart time.Time
		if e.runNS != nil {
			runStart = time.Now()
		}
		sink, vmRes, wld := e.runOnce(asn, &sc, st.cache)
		st.finish(w, seq, origin, asn, sink, vmRes, wld)
		if e.runNS != nil {
			// Observed outside the coordination lock: three histograms of
			// atomic adds per ~half-millisecond run.
			e.runNS.Observe(float64(time.Since(runStart).Nanoseconds()))
			e.solverCalls.Observe(float64(sc.solves))
			var bits int64
			for _, n := range sink.loggedExecs {
				bits += n
			}
			e.loggedBits.Observe(float64(bits))
		}
		// finish copied the queued sets into the deque; reclaim the buffer
		// and remember the path length for the next run's conds sizing.
		sc.queued = sink.queued[:0]
		sc.condsCap = len(sink.conds)
	}
}

// Reproduce runs the guided search until the bug is reproduced or the budget
// is exhausted. The context's cancellation or deadline stops the search
// promptly — in-flight runs finish (each is bounded by MaxStepsPerRun) but no
// new run starts. With Options.Workers > 1 the pending-list exploration is
// fanned out over a worker pool; the reproduction with the lowest run
// sequence number wins, so the selected result is independent of goroutine
// scheduling among the runs in flight when the first reproduction lands.
func (e *Engine) Reproduce(ctx context.Context) *Result {
	start := time.Now()
	if e.opts.TimeBudget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, start.Add(e.opts.TimeBudget))
		defer cancel()
	}

	st := &searchState{
		eng:     e,
		cache:   vm.NewSearchCache(),
		deques:  make([][]pendingSet, e.opts.Workers),
		profile: make(map[lang.BranchID]*instrument.BranchCost),
	}
	for i := range st.deques {
		st.deques[i] = dequeGet()
	}
	defer func() {
		for _, d := range st.deques {
			dequePut(d)
		}
	}()
	st.cond = sync.NewCond(&st.mu)

	// The watcher wakes workers blocked on the pending list when the context
	// fires; without it a cancelled search would sleep until the next run.
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			st.mu.Lock()
			st.stopOn(ctx.Err())
			st.mu.Unlock()
		case <-watchDone:
		}
	}()

	workers := e.opts.Workers
	solvers := make([]*solver.Solver, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		slv := solver.Get(e.opts.Solver)
		solvers[i] = slv
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e.worker(ctx, st, w, slv)
		}(i)
	}
	wg.Wait()
	close(watchDone)

	res := &Result{
		Workers:     workers,
		Runs:        st.started,
		Aborts:      st.aborts,
		PendingPeak: st.peak,
		TimedOut:    st.timedOut,
		Cancelled:   st.cancelled,
		Elapsed:     time.Since(start),
	}
	for _, slv := range solvers {
		res.SolverStats.Add(slv.Stats())
		solver.Put(slv)
	}
	fp := e.rec.Fingerprint
	if fp == "" {
		fp = e.rec.Plan.Fingerprint()
	}
	res.Profile = &instrument.SearchProfile{
		ProgHash:        e.rec.Plan.ProgHash,
		PlanFingerprint: fp,
		Generation:      e.rec.Plan.Generation,
		Runs:            st.completed,
		Aborts:          st.aborts,
		Reproduced:      st.winner != nil,
		Workers:         workers,
		Solver:          res.SolverStats,
		Branches:        st.profile,
	}
	if st.winner != nil {
		res.Reproduced = true
		res.TimedOut = false
		res.Cancelled = false
		res.Input = st.winner.asn
		res.InputBytes = materializeAll(st.winner.w)
		fillPathStats(res, st.winner.sink)
	}
	return res
}

// materializeAll renders every declared input stream to concrete bytes.
func materializeAll(w *world.World) map[string][]byte {
	out := make(map[string][]byte)
	for _, a := range w.Spec.Args {
		out[a.Name] = w.MaterializeStream(a)
	}
	for _, f := range w.Spec.Files {
		out[f.Stream.Name] = w.MaterializeStream(f.Stream)
	}
	for _, c := range w.Spec.Conns {
		out[c.Stream.Name] = w.MaterializeStream(c.Stream)
	}
	return out
}

// runOnce executes the program once under the recorded guidance.
func (e *Engine) runOnce(asn sym.MapAssignment, sc *runScratch, cache *vm.SearchCache) (*runSink, vm.Result, *world.World) {
	w := world.NewWorld(e.spec, e.reg, asn)
	cfg := w.KernelConfig()
	if e.rec.SysLog != nil {
		// Each run consumes its own clone of the recorded results, so
		// concurrent runs never share replay cursors.
		cfg.Mode = oskernel.ModeReplayLogged
		cfg.Log = e.rec.SysLog.Clone()
	} else {
		cfg.Mode = oskernel.ModeReplayModel
		cfg.Model = w
		w.ModelSyscalls = true
	}
	kern := oskernel.New(cfg)
	n := len(e.prog.Branches)
	if len(sc.counts) == 5*n {
		clear(sc.counts)
	} else {
		sc.counts = make([]int64, 5*n)
	}
	counts := sc.counts
	sink := &runSink{
		eng:              e,
		reader:           trace.NewReader(e.rec.Trace),
		asn:              asn,
		conds:            make([]sym.Constraint, 0, sc.condsCap+16),
		queued:           sc.queued[:0],
		symExecLogged:    counts[0*n : 1*n],
		symExecNotLogged: counts[1*n : 2*n],
		forks:            counts[2*n : 3*n],
		loggedExecs:      counts[3*n : 4*n],
		disagrees:        counts[4*n : 5*n],
	}
	machine := e.opts.Engine(e.prog, vm.Options{
		Kernel:   kern,
		Sink:     sink,
		World:    w,
		MaxSteps: e.opts.MaxStepsPerRun,
		Cache:    cache,
	})
	vmRes, err := machine.Run()
	if err != nil {
		panic(err) // VM-internal error: a bug in this repository
	}
	return sink, vmRes, w
}

// isReproduction checks the success criterion: the run crashed at the
// recorded site and consumed the entire bitvector without mismatch.
func (e *Engine) isReproduction(sink *runSink, vmRes vm.Result) bool {
	if sink.mismatch || !vmRes.Crashed {
		return false
	}
	if vmRes.Crash.Kind != e.rec.Crash.Kind || vmRes.Crash.Pos != e.rec.Crash.Pos {
		return false
	}
	return sink.reader.Exhausted()
}

func fillPathStats(res *Result, sink *runSink) {
	for _, n := range sink.symExecLogged {
		if n != 0 {
			res.SymLoggedExecs += n
			res.SymLoggedLocs++
		}
	}
	for _, n := range sink.symExecNotLogged {
		if n != 0 {
			res.SymNotLoggedExecs += n
			res.SymNotLoggedLocs++
		}
	}
}

func seedForIDs(parent sym.MapAssignment, vars []int) sym.MapAssignment {
	out := make(sym.MapAssignment, len(vars))
	for _, id := range vars {
		if v, ok := parent[id]; ok {
			out[id] = v
		}
	}
	return out
}

func mergeAsn(parent, child sym.MapAssignment) sym.MapAssignment {
	out := make(sym.MapAssignment, len(parent)+len(child))
	for id, v := range parent {
		out[id] = v
	}
	for id, v := range child {
		out[id] = v
	}
	return out
}
