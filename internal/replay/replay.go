// Package replay implements the paper's bug reproduction engine (§3): a
// symbolic execution engine guided by the partial branch log recorded at the
// user site.
//
// The engine performs a sequence of concolic runs. Each run executes the
// program with fully concrete inputs while the branch sink enforces the
// recorded bitvector: at every instrumented branch the next bit is consumed
// and compared with the direction the current input takes. The four cases of
// §3.1 are implemented literally:
//
//  1. symbolic, not instrumented — record the constraint, queue the negated
//     alternative on the pending list, continue;
//  2. symbolic, instrumented — on agreement record the constraint and
//     continue; on disagreement queue the constraint set that forces the
//     recorded direction and abort the run;
//  3. concrete, instrumented — on agreement continue; on disagreement abort
//     (an earlier uninstrumented symbolic branch went the wrong way);
//  4. concrete, not instrumented — continue.
//
// When a run aborts, the engine pops a pending constraint set (depth-first,
// §3.2), solves it for a new input, and starts over. Reproduction succeeds
// when a run crashes at the recorded bug site having matched the entire
// bitvector.
package replay

import (
	"time"

	"pathlog/internal/instrument"
	"pathlog/internal/lang"
	"pathlog/internal/oskernel"
	"pathlog/internal/solver"
	"pathlog/internal/sym"
	"pathlog/internal/trace"
	"pathlog/internal/vm"
	"pathlog/internal/world"
)

// Options bound the replay effort. TimeBudget is the paper's one-hour
// cutoff, scaled; exceeding it reports TimedOut (the ∞ entries of Tables 3,
// 5 and 6).
type Options struct {
	MaxRuns        int           // 0 means DefaultMaxRuns
	TimeBudget     time.Duration // 0 means no limit
	MaxStepsPerRun int64         // 0 uses the VM default
	MaxPending     int           // pending list cap; 0 means DefaultMaxPending
	// PickFIFO explores pending constraint sets oldest-first instead of the
	// paper's depth-first choice (§3.2), for the pick-heuristic ablation.
	PickFIFO bool
	Solver   solver.Options
}

// Default bounds.
const (
	DefaultMaxRuns    = 2000
	DefaultMaxPending = 100000
)

// Recording is everything the developer has when a bug report arrives: the
// plan (kept at instrumentation time), the branch bitvector, the optional
// syscall-result log, and the crash site from the report.
type Recording struct {
	Plan   *instrument.Plan
	Trace  *trace.Trace
	SysLog *oskernel.SyscallLog // nil when syscall logging was off
	Crash  vm.CrashInfo
}

// Result summarizes one reproduction attempt.
type Result struct {
	Reproduced bool
	TimedOut   bool
	Runs       int
	Aborts     int
	Elapsed    time.Duration
	// Input is the reproducing assignment (a set of inputs that activates
	// the bug — not necessarily the user's input).
	Input sym.MapAssignment
	// InputBytes is the reproducing input rendered as concrete bytes per
	// stream — the artifact the developer actually uses.
	InputBytes map[string][]byte
	// Stats over the successful run's path, for Tables 4, 7 and 8.
	SymLoggedLocs     int
	SymLoggedExecs    int64
	SymNotLoggedLocs  int
	SymNotLoggedExecs int64
	SolverStats       solver.Stats
	PendingPeak       int
}

// Engine reproduces one recorded bug.
type Engine struct {
	prog *lang.Program
	spec *world.Spec
	reg  *world.Registry
	rec  *Recording
	slv  *solver.Solver
	opts Options
}

// New creates a replay engine. The registry may be fresh: variable identity
// is reconstructed deterministically from stream coordinates.
func New(prog *lang.Program, spec *world.Spec, reg *world.Registry, rec *Recording, opts Options) *Engine {
	if opts.MaxRuns <= 0 {
		opts.MaxRuns = DefaultMaxRuns
	}
	if opts.MaxPending <= 0 {
		opts.MaxPending = DefaultMaxPending
	}
	return &Engine{
		prog: prog,
		spec: spec,
		reg:  reg,
		rec:  rec,
		slv:  solver.New(opts.Solver),
		opts: opts,
	}
}

// pendingSet is one unexplored alternative: a prefix of the producing run's
// path condition plus one appended constraint, and the input of that run
// (used as the solver seed). The prefix is stored as a length into the run's
// final constraint slice — runs only append, so the first prefixLen entries
// are exactly the prefix at push time. Materializing lazily keeps pushing
// O(1); the eager-clone alternative is quadratic in path length and stalls
// diff-sized runs.
type pendingSet struct {
	runConds  []sym.Constraint
	prefixLen int
	appended  sym.Constraint
	parent    sym.MapAssignment
}

// materialize builds the full constraint conjunction (copying, because the
// backing array is shared between pending sets of the same run).
func (p *pendingSet) materialize() []sym.Constraint {
	out := make([]sym.Constraint, 0, p.prefixLen+1)
	out = append(out, p.runConds[:p.prefixLen]...)
	return append(out, p.appended)
}

// maxRunConds caps the collected path condition per replay run; beyond the
// cap, case-1 alternatives are no longer queued (extremely long paths only).
const maxRunConds = 8192

// runSink is the per-run branch sink implementing the four cases.
type runSink struct {
	eng    *Engine
	reader *trace.Reader
	asn    sym.MapAssignment
	conds  []sym.Constraint
	queued []pendingSet

	mismatch bool // a case-2b/3b abort happened

	// Per-location stats over this run (symbolic executions only).
	symExecLogged    map[lang.BranchID]int64
	symExecNotLogged map[lang.BranchID]int64
}

// OnBranch implements vm.BranchSink.
func (s *runSink) OnBranch(site *lang.BranchSite, cond vm.Value, taken bool) error {
	symbolic := cond.IsSymbolic()
	instrumented := s.eng.rec.Plan.Instrumented[site.ID]

	switch {
	case symbolic && !instrumented:
		// Case 1: unlogged symbolic branch — both directions are possible.
		s.symExecNotLogged[site.ID]++
		c := sym.Constraint{E: cond.Sym, Truth: taken}
		if len(s.conds) < maxRunConds {
			s.pushPending(c.Negated())
			s.conds = append(s.conds, c)
		}
		return nil

	case symbolic && instrumented:
		// Case 2: the log dictates the direction.
		s.symExecLogged[site.ID]++
		logged, ok := s.reader.Next()
		if !ok {
			// Log exhausted: this run has executed more instrumented
			// branches than the recording — a diverged path. Abort.
			s.mismatch = true
			return vm.ErrAbortRun
		}
		if logged == taken {
			if len(s.conds) < maxRunConds {
				s.conds = append(s.conds, sym.Constraint{E: cond.Sym, Truth: taken})
			}
			return nil
		}
		// 2b: force the recorded direction in a pending set and abort.
		s.pushPending(sym.Constraint{E: cond.Sym, Truth: logged})
		s.mismatch = true
		return vm.ErrAbortRun

	case !symbolic && instrumented:
		// Case 3: concrete and logged — agreement check only.
		logged, ok := s.reader.Next()
		if !ok || logged != taken {
			// 3b: a wrong earlier turn at an uninstrumented symbolic branch.
			s.mismatch = true
			return vm.ErrAbortRun
		}
		return nil

	default:
		// Case 4: concrete, not instrumented.
		return nil
	}
}

// pushPending queues the current prefix plus one appended constraint.
func (s *runSink) pushPending(appended sym.Constraint) {
	if len(s.queued) >= s.eng.opts.MaxPending {
		return
	}
	s.queued = append(s.queued, pendingSet{
		prefixLen: len(s.conds),
		appended:  appended,
		parent:    s.asn,
	})
}

// Reproduce runs the guided search until the bug is reproduced or the budget
// is exhausted.
func (e *Engine) Reproduce() *Result {
	start := time.Now()
	deadline := time.Time{}
	if e.opts.TimeBudget > 0 {
		deadline = start.Add(e.opts.TimeBudget)
	}
	res := &Result{}

	// DFS stack of pending constraint sets.
	var stack []pendingSet
	asn := sym.MapAssignment{} // initial run: seed input

	for res.Runs < e.opts.MaxRuns {
		if !deadline.IsZero() && time.Now().After(deadline) {
			res.TimedOut = true
			break
		}
		res.Runs++
		sink, vmRes, w := e.runOnce(asn)

		if e.isReproduction(sink, vmRes) {
			res.Reproduced = true
			res.Input = asn
			res.InputBytes = materializeAll(w)
			res.Elapsed = time.Since(start)
			res.SolverStats = e.slv.Stats()
			fillPathStats(res, sink)
			return res
		}
		res.Aborts++

		// Queue this run's alternatives; deepest alternatives are pushed
		// last and popped first (depth-first, §3.2). The sets share the
		// run's final constraint slice.
		for i := range sink.queued {
			sink.queued[i].runConds = sink.conds
		}
		stack = append(stack, sink.queued...)
		if len(stack) > res.PendingPeak {
			res.PendingPeak = len(stack)
		}

		found := false
		for len(stack) > 0 {
			if !deadline.IsZero() && time.Now().After(deadline) {
				res.TimedOut = true
				res.Elapsed = time.Since(start)
				res.SolverStats = e.slv.Stats()
				return res
			}
			var top pendingSet
			if e.opts.PickFIFO {
				top = stack[0]
				stack = stack[1:]
			} else {
				top = stack[len(stack)-1]
				stack = stack[:len(stack)-1]
			}
			conds := top.materialize()
			vars := sym.ConstraintVars(conds)
			solved, ok := e.slv.Solve(solver.Problem{
				Constraints: conds,
				Domains:     e.reg.Domains(vars),
				Seed:        seedFor(top.parent, vars),
			})
			if !ok {
				continue
			}
			asn = mergeAsn(top.parent, solved)
			found = true
			break
		}
		if !found {
			break // search space exhausted
		}
	}

	res.Elapsed = time.Since(start)
	res.SolverStats = e.slv.Stats()
	if !res.TimedOut && res.Runs >= e.opts.MaxRuns {
		res.TimedOut = true
	}
	return res
}

// materializeAll renders every declared input stream to concrete bytes.
func materializeAll(w *world.World) map[string][]byte {
	out := make(map[string][]byte)
	for _, a := range w.Spec.Args {
		out[a.Name] = w.MaterializeStream(a)
	}
	for _, f := range w.Spec.Files {
		out[f.Stream.Name] = w.MaterializeStream(f.Stream)
	}
	for _, c := range w.Spec.Conns {
		out[c.Stream.Name] = w.MaterializeStream(c.Stream)
	}
	return out
}

// runOnce executes the program once under the recorded guidance.
func (e *Engine) runOnce(asn sym.MapAssignment) (*runSink, vm.Result, *world.World) {
	w := world.NewWorld(e.spec, e.reg, asn)
	cfg := w.KernelConfig()
	if e.rec.SysLog != nil {
		e.rec.SysLog.Rewind()
		cfg.Mode = oskernel.ModeReplayLogged
		cfg.Log = e.rec.SysLog
	} else {
		cfg.Mode = oskernel.ModeReplayModel
		cfg.Model = w
		w.ModelSyscalls = true
	}
	kern := oskernel.New(cfg)
	sink := &runSink{
		eng:              e,
		reader:           trace.NewReader(e.rec.Trace),
		asn:              asn,
		symExecLogged:    make(map[lang.BranchID]int64),
		symExecNotLogged: make(map[lang.BranchID]int64),
	}
	machine := vm.New(e.prog, vm.Options{
		Kernel:   kern,
		Sink:     sink,
		World:    w,
		MaxSteps: e.opts.MaxStepsPerRun,
	})
	vmRes, err := machine.Run()
	if err != nil {
		panic(err) // VM-internal error: a bug in this repository
	}
	return sink, vmRes, w
}

// isReproduction checks the success criterion: the run crashed at the
// recorded site and consumed the entire bitvector without mismatch.
func (e *Engine) isReproduction(sink *runSink, vmRes vm.Result) bool {
	if sink.mismatch || !vmRes.Crashed {
		return false
	}
	if vmRes.Crash.Kind != e.rec.Crash.Kind || vmRes.Crash.Pos != e.rec.Crash.Pos {
		return false
	}
	return sink.reader.Exhausted()
}

func fillPathStats(res *Result, sink *runSink) {
	for _, n := range sink.symExecLogged {
		res.SymLoggedExecs += n
	}
	res.SymLoggedLocs = len(sink.symExecLogged)
	for _, n := range sink.symExecNotLogged {
		res.SymNotLoggedExecs += n
	}
	res.SymNotLoggedLocs = len(sink.symExecNotLogged)
}

func seedFor(parent sym.MapAssignment, vars map[int]struct{}) sym.MapAssignment {
	out := make(sym.MapAssignment, len(vars))
	for id := range vars {
		if v, ok := parent[id]; ok {
			out[id] = v
		}
	}
	return out
}

func mergeAsn(parent, child sym.MapAssignment) sym.MapAssignment {
	out := make(sym.MapAssignment, len(parent)+len(child))
	for id, v := range parent {
		out[id] = v
	}
	for id, v := range child {
		out[id] = v
	}
	return out
}
