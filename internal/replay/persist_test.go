package replay

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pathlog/internal/instrument"
	"pathlog/internal/world"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

func TestRecordingSaveLoadRoundTrip(t *testing.T) {
	f := buildFixture(t, instrument.MethodDynamicStatic)
	path := filepath.Join(t.TempDir(), "bug.report")
	if err := f.rec.Save(path); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadRecordingFor(path, f.prog)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Plan.Method != f.rec.Plan.Method {
		t.Errorf("method: %v vs %v", loaded.Plan.Method, f.rec.Plan.Method)
	}
	if loaded.Plan.Strategy != f.rec.Plan.Strategy {
		t.Errorf("strategy: %q vs %q", loaded.Plan.Strategy, f.rec.Plan.Strategy)
	}
	if loaded.Plan.NumInstrumented() != f.rec.Plan.NumInstrumented() {
		t.Errorf("instrumented: %d vs %d",
			loaded.Plan.NumInstrumented(), f.rec.Plan.NumInstrumented())
	}
	// The stamp must survive and agree with the reloaded plan.
	if loaded.Fingerprint == "" || loaded.Fingerprint != f.rec.Plan.Fingerprint() {
		t.Errorf("fingerprint: %q vs %q", loaded.Fingerprint, f.rec.Plan.Fingerprint())
	}
	if loaded.Plan.Cost != f.rec.Plan.Cost {
		t.Errorf("cost: %+v vs %+v", loaded.Plan.Cost, f.rec.Plan.Cost)
	}
	if loaded.Trace.Len() != f.rec.Trace.Len() {
		t.Fatalf("trace bits: %d vs %d", loaded.Trace.Len(), f.rec.Trace.Len())
	}
	for i := int64(0); i < loaded.Trace.Len(); i++ {
		if loaded.Trace.Bit(i) != f.rec.Trace.Bit(i) {
			t.Fatalf("bit %d differs", i)
		}
	}
	if loaded.Crash != f.rec.Crash {
		t.Errorf("crash: %+v vs %+v", loaded.Crash, f.rec.Crash)
	}
	if (loaded.SysLog == nil) != (f.rec.SysLog == nil) {
		t.Error("syslog presence differs")
	}

	// The loaded recording must replay identically.
	eng := New(f.prog, f.spec, world.NewRegistry(), loaded, Options{MaxRuns: 300})
	res := eng.Reproduce(context.Background())
	if !res.Reproduced {
		t.Fatalf("loaded recording did not reproduce: %+v", res)
	}
}

// saveV1 writes rec in the legacy version-1 envelope (no provenance stamp)
// — the format v0/PR-1 builds produced.
func saveV1(t *testing.T, rec *Recording, path string) {
	t.Helper()
	if err := rec.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var enc map[string]any
	if err := json.Unmarshal(data, &enc); err != nil {
		t.Fatal(err)
	}
	enc["version"] = 1
	delete(enc, "strategy")
	delete(enc, "prog_hash")
	delete(enc, "cost")
	delete(enc, "plan_fingerprint")
	out, err := json.MarshalIndent(enc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRecordingV1FixtureStillLoads is the backward-compat gate: the
// checked-in version-1 report (produced before envelopes carried a
// provenance stamp) must load, validate leniently, and replay.
func TestRecordingV1FixtureStillLoads(t *testing.T) {
	fixturePath := filepath.Join("testdata", "recording_v1.json")
	f := buildFixture(t, instrument.MethodDynamicStatic)
	if *updateGolden {
		saveV1(t, f.rec, fixturePath)
	}
	rec, err := LoadRecordingFor(fixturePath, f.prog)
	if err != nil {
		t.Fatalf("v1 fixture rejected: %v (run with -update-golden to regenerate)", err)
	}
	if rec.Fingerprint != "" {
		t.Errorf("v1 recording grew a fingerprint: %q", rec.Fingerprint)
	}
	if rec.Plan.ProgHash != "" || rec.Plan.Strategy != "" {
		t.Errorf("v1 recording grew provenance: %+v", rec.Plan)
	}
	if rec.Plan.Method != instrument.MethodDynamicStatic {
		t.Errorf("method: %v", rec.Plan.Method)
	}
	eng := New(f.prog, f.spec, world.NewRegistry(), rec, Options{MaxRuns: 300})
	if res := eng.Reproduce(context.Background()); !res.Reproduced {
		t.Fatalf("v1 recording did not reproduce: %+v", res)
	}
}

// TestRecordingV2GoldenFile pins the current envelope byte-for-byte.
func TestRecordingV2GoldenFile(t *testing.T) {
	golden := filepath.Join("testdata", "recording_v2_golden.json")
	f := buildFixture(t, instrument.MethodDynamicStatic)
	path := filepath.Join(t.TempDir(), "bug.report")
	if err := f.rec.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("recording serialization drifted from golden file:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// And the golden file itself loads and validates.
	if _, err := LoadRecordingFor(golden, f.prog); err != nil {
		t.Errorf("golden recording rejected: %v", err)
	}
}

func TestRecordingFileHasNoInputBytes(t *testing.T) {
	// The serialized report must not contain the user's distinctive input.
	f := buildFixture(t, instrument.MethodAll)
	path := filepath.Join(t.TempDir(), "bug.report")
	if err := f.rec.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "PQ") {
		// "PQ" appearing inside base64 is possible but the check also
		// guards the JSON fields; tolerate base64 collisions only if the
		// raw trace bytes themselves do not spell the input.
		if strings.Contains(string(f.rec.Trace.Bytes()), "PQ") {
			t.Skip("coincidental bit pattern")
		}
		t.Error("report appears to contain the user's input bytes")
	}
	for _, field := range []string{"instrumented_branches", "trace_data", "crash", "plan_fingerprint"} {
		if !strings.Contains(string(data), field) {
			t.Errorf("missing field %q", field)
		}
	}
}

// mutateRecording saves the fixture, applies a JSON-level edit, and
// returns the path of the edited report.
func mutateRecording(t *testing.T, rec *Recording, edit func(map[string]any)) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bug.report")
	if err := rec.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var enc map[string]any
	if err := json.Unmarshal(data, &enc); err != nil {
		t.Fatal(err)
	}
	edit(enc)
	out, err := json.Marshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadRecordingHardening(t *testing.T) {
	f := buildFixture(t, instrument.MethodDynamicStatic)
	cases := map[string]func(map[string]any){
		"trace_bits exceeds data": func(m map[string]any) {
			m["trace_bits"] = float64(1 << 20)
		},
		"trace_bits negative": func(m map[string]any) {
			m["trace_bits"] = float64(-1)
		},
		"trace_bits undercounts data": func(m map[string]any) {
			m["trace_bits"] = float64(0)
		},
		"negative branch ID": func(m map[string]any) {
			m["instrumented_branches"] = []any{float64(-3), float64(1)}
		},
		"duplicate branch ID": func(m map[string]any) {
			m["instrumented_branches"] = []any{float64(1), float64(1)}
		},
		"unsorted branch IDs": func(m map[string]any) {
			m["instrumented_branches"] = []any{float64(2), float64(1)}
		},
		"fingerprint mismatch": func(m map[string]any) {
			m["log_syscalls"] = false // flag no longer matches the stamp
		},
		"unknown version": func(m map[string]any) {
			m["version"] = float64(9)
		},
		// Lineage lives outside the fingerprint, so it gets its own
		// structural check — LoadPlan rejects the same corruption.
		"negative generation": func(m map[string]any) {
			m["generation"] = float64(-3)
		},
	}
	for name, edit := range cases {
		path := mutateRecording(t, f.rec, edit)
		if _, err := LoadRecording(path); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestLoadRecordingForWrongProgram: a recording from one build must be
// refused for another, both on out-of-range branch IDs and on the program
// hash.
func TestLoadRecordingForWrongProgram(t *testing.T) {
	f := buildFixture(t, instrument.MethodAll)
	path := filepath.Join(t.TempDir(), "bug.report")
	if err := f.rec.Save(path); err != nil {
		t.Fatal(err)
	}
	other := compile(t, `int main() { return 0; }`) // no branches at all
	if _, err := LoadRecordingFor(path, other); err == nil {
		t.Error("recording accepted for a program without its branches")
	}
	// A later build of the "same" program: branch IDs fit (still two
	// branches) but their source positions moved, so the hash differs.
	similar := compile(t, `
int main() {
	char a[8];
	int pad = 0;
	getarg(0, a, 8);
	if (a[0] == 'P') {
		if (a[1] == 'Q') {
			crash(1);
		}
	}
	return pad;
}
`)
	if _, err := LoadRecordingFor(path, similar); err == nil {
		t.Error("recording accepted for a different program with compatible IDs")
	}
}

func TestLoadRecordingErrors(t *testing.T) {
	if _, err := LoadRecording(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file must error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := LoadRecording(bad); err == nil {
		t.Error("malformed JSON must error")
	}
	wrongVersion := filepath.Join(t.TempDir(), "v9.json")
	os.WriteFile(wrongVersion, []byte(`{"version":9}`), 0o644)
	if _, err := LoadRecording(wrongVersion); err == nil {
		t.Error("unknown version must error")
	}
}

// TestRecordingRefEnvelope round-trips the stamped-only reference
// envelope (version 3): no plan travels, the stamp does, and the
// recording replays once the retained plan is attached — the store-backed
// deployment path.
func TestRecordingRefEnvelope(t *testing.T) {
	f := buildFixture(t, instrument.MethodDynamicStatic)
	path := filepath.Join(t.TempDir(), "bug.report")
	if err := f.rec.SaveRef(path); err != nil {
		t.Fatal(err)
	}

	// The file must not embed the plan's branch set.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "instrumented_branches") {
		t.Fatal("reference envelope leaked the instrumented branch set")
	}

	loaded, err := LoadRecording(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Plan != nil {
		t.Fatal("reference envelope loaded with an embedded plan")
	}
	if want := f.rec.Plan.Fingerprint(); loaded.Fingerprint != want {
		t.Errorf("stamp %q, want %q", loaded.Fingerprint, want)
	}
	if loaded.ProgHash != f.rec.Plan.ProgHash {
		t.Errorf("prog hash %q, want %q", loaded.ProgHash, f.rec.Plan.ProgHash)
	}
	if loaded.Trace.Len() != f.rec.Trace.Len() {
		t.Fatalf("trace bits %d, want %d", loaded.Trace.Len(), f.rec.Trace.Len())
	}
	if (loaded.SysLog == nil) != (f.rec.SysLog == nil) {
		t.Error("syslog presence differs")
	}

	// Unresolved, it cannot be validated — and the error names the stamp
	// and points at the plan store.
	err = loaded.Validate(f.prog)
	if err == nil || !strings.Contains(err.Error(), loaded.Fingerprint) ||
		!strings.Contains(err.Error(), "WithPlanStore") {
		t.Errorf("unresolved reference recording validated, or unhelpfully refused: %v", err)
	}

	// LoadRecordingFor refuses it for the same reason (it cannot validate
	// a plan that is not there).
	if _, err := LoadRecordingFor(path, f.prog); err == nil {
		t.Error("LoadRecordingFor accepted an unresolved reference recording")
	}

	// With the retained plan attached (what Session.Replay does via the
	// store), it validates and replays identically.
	loaded.Plan = f.rec.Plan
	if err := loaded.Validate(f.prog); err != nil {
		t.Fatalf("resolved reference recording rejected: %v", err)
	}
	eng := New(f.prog, f.spec, world.NewRegistry(), loaded, Options{MaxRuns: 300})
	if res := eng.Reproduce(context.Background()); !res.Reproduced {
		t.Fatalf("resolved reference recording did not reproduce: %+v", res)
	}
}

// A reference envelope that smuggles a branch set, or lost its stamp, is
// corrupt — there must be exactly one plan identity, the fingerprint.
func TestRefEnvelopeHardening(t *testing.T) {
	f := buildFixture(t, instrument.MethodDynamicStatic)
	dir := t.TempDir()
	path := filepath.Join(dir, "bug.report")
	if err := f.rec.SaveRef(path); err != nil {
		t.Fatal(err)
	}
	mutate := func(name string, edit func(enc map[string]any)) string {
		t.Helper()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var enc map[string]any
		if err := json.Unmarshal(data, &enc); err != nil {
			t.Fatal(err)
		}
		edit(enc)
		out, err := json.Marshal(enc)
		if err != nil {
			t.Fatal(err)
		}
		bad := filepath.Join(dir, name)
		if err := os.WriteFile(bad, out, 0o644); err != nil {
			t.Fatal(err)
		}
		return bad
	}
	noStamp := mutate("nostamp.json", func(enc map[string]any) {
		delete(enc, "plan_fingerprint")
	})
	if _, err := LoadRecording(noStamp); err == nil {
		t.Error("reference envelope without a stamp loaded")
	}
	smuggled := mutate("smuggled.json", func(enc map[string]any) {
		enc["instrumented_branches"] = []int{0, 1}
	})
	if _, err := LoadRecording(smuggled); err == nil {
		t.Error("reference envelope with a smuggled branch set loaded")
	}
}
