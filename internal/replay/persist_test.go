package replay

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pathlog/internal/instrument"
	"pathlog/internal/world"
)

func TestRecordingSaveLoadRoundTrip(t *testing.T) {
	f := buildFixture(t, instrument.MethodDynamicStatic)
	path := filepath.Join(t.TempDir(), "bug.report")
	if err := f.rec.Save(path); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadRecording(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Plan.Method != f.rec.Plan.Method {
		t.Errorf("method: %v vs %v", loaded.Plan.Method, f.rec.Plan.Method)
	}
	if loaded.Plan.NumInstrumented() != f.rec.Plan.NumInstrumented() {
		t.Errorf("instrumented: %d vs %d",
			loaded.Plan.NumInstrumented(), f.rec.Plan.NumInstrumented())
	}
	if loaded.Trace.Len() != f.rec.Trace.Len() {
		t.Fatalf("trace bits: %d vs %d", loaded.Trace.Len(), f.rec.Trace.Len())
	}
	for i := int64(0); i < loaded.Trace.Len(); i++ {
		if loaded.Trace.Bit(i) != f.rec.Trace.Bit(i) {
			t.Fatalf("bit %d differs", i)
		}
	}
	if loaded.Crash != f.rec.Crash {
		t.Errorf("crash: %+v vs %+v", loaded.Crash, f.rec.Crash)
	}
	if (loaded.SysLog == nil) != (f.rec.SysLog == nil) {
		t.Error("syslog presence differs")
	}

	// The loaded recording must replay identically.
	eng := New(f.prog, f.spec, world.NewRegistry(), loaded, Options{MaxRuns: 300})
	res := eng.Reproduce(context.Background())
	if !res.Reproduced {
		t.Fatalf("loaded recording did not reproduce: %+v", res)
	}
}

func TestRecordingFileHasNoInputBytes(t *testing.T) {
	// The serialized report must not contain the user's distinctive input.
	f := buildFixture(t, instrument.MethodAll)
	path := filepath.Join(t.TempDir(), "bug.report")
	if err := f.rec.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "PQ") {
		// "PQ" appearing inside base64 is possible but the check also
		// guards the JSON fields; tolerate base64 collisions only if the
		// raw trace bytes themselves do not spell the input.
		if strings.Contains(string(f.rec.Trace.Bytes()), "PQ") {
			t.Skip("coincidental bit pattern")
		}
		t.Error("report appears to contain the user's input bytes")
	}
	for _, field := range []string{"instrumented_branches", "trace_data", "crash"} {
		if !strings.Contains(string(data), field) {
			t.Errorf("missing field %q", field)
		}
	}
}

func TestLoadRecordingErrors(t *testing.T) {
	if _, err := LoadRecording(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file must error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := LoadRecording(bad); err == nil {
		t.Error("malformed JSON must error")
	}
	wrongVersion := filepath.Join(t.TempDir(), "v9.json")
	os.WriteFile(wrongVersion, []byte(`{"version":9}`), 0o644)
	if _, err := LoadRecording(wrongVersion); err == nil {
		t.Error("unknown version must error")
	}
}
