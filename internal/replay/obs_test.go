package replay

import (
	"context"
	"testing"

	"pathlog/internal/instrument"
	"pathlog/internal/obs"
	"pathlog/internal/world"
)

// TestReproduceObservesHistograms runs a full search with a registry
// attached and checks the three per-run histograms account for every run
// the engine reports — the instrumentation the bench baseline's
// distribution data comes from.
func TestReproduceObservesHistograms(t *testing.T) {
	f := buildFixture(t, instrument.MethodDynamic)
	reg := obs.NewRegistry()
	eng := New(f.prog, f.spec, world.NewRegistry(), f.rec, Options{
		MaxRuns: 500, Workers: 4, Obs: reg,
	})
	res := eng.Reproduce(context.Background())
	if !res.Reproduced {
		t.Fatalf("not reproduced: %+v", res)
	}
	s := reg.Snapshot()
	byName := map[string]obs.HistogramSnapshot{}
	for _, h := range s.Histograms {
		byName[h.Name] = h
	}
	for _, name := range []string{
		"pathlog_replay_run_ns",
		"pathlog_replay_solver_calls_per_run",
		"pathlog_replay_logged_bits_per_run",
	} {
		h, ok := byName[name]
		if !ok {
			t.Fatalf("histogram %s not registered (have %v)", name, byName)
		}
		if h.Count != int64(res.Runs) {
			t.Errorf("%s observed %d runs, engine reports %d", name, h.Count, res.Runs)
		}
	}
	if byName["pathlog_replay_run_ns"].Sum <= 0 {
		t.Error("run-ns histogram observed no time")
	}
}

// TestReproduceWithoutObsRegistersNothing pins the opt-in contract: no
// registry, no instruments, no overhead path.
func TestReproduceWithoutObsRegistersNothing(t *testing.T) {
	f := buildFixture(t, instrument.MethodDynamic)
	eng := New(f.prog, f.spec, world.NewRegistry(), f.rec, Options{MaxRuns: 200})
	if eng.runNS != nil || eng.solverCalls != nil || eng.loggedBits != nil {
		t.Fatal("histograms resolved without a registry")
	}
	if res := eng.Reproduce(context.Background()); !res.Reproduced {
		t.Fatalf("not reproduced: %+v", res)
	}
}
