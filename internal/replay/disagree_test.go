package replay

import (
	"context"
	"testing"

	"pathlog/internal/instrument"
	"pathlog/internal/lang"
	"pathlog/internal/world"
)

// agreeBranchSrc has one instrumented branch whose recorded direction
// matches the neutral seed (a[0] == 'x' with seed "xx") — its bits are
// consumed on every run but never contradict anything — and one
// uninstrumented crash driver the search must flip.
const agreeBranchSrc = `
int main() {
	char a[4];
	getarg(0, a, 4);
	if (a[0] == 'x') {
		print_str("s");
	}
	if (a[1] == 'K') {
		crash(1);
	}
	return 0;
}
`

// TestDisagreementAttribution pins the demotion evidence the replay
// engine charges: consumed log bits per instrumented branch
// (BranchCost.LoggedExecs) and the bits that contradicted a run's own
// direction (BranchCost.Disagreements, §3.1 case 2b).
func TestDisagreementAttribution(t *testing.T) {
	ctx := context.Background()

	// The forced chain of sideBranchSrc: replaying "PQx" from the neutral
	// seed "xxx" walks two case-2b disagreements (the log forces 'P' then
	// 'Q' against the seed's 'x'), so neither chain branch is demotable —
	// their bits are exactly what steers the search.
	prog := compile(t, sideBranchSrc)
	spec := &world.Spec{Args: []world.Stream{world.ArgSpec(0, "xxx", 4)}}
	plan := &instrument.Plan{
		Method:       instrument.MethodDynamic,
		Instrumented: map[lang.BranchID]bool{0: true, 1: true},
	}
	rec := record(t, prog, spec, plan, map[string][]byte{"arg0": []byte("PQx")})
	res := New(prog, spec, world.NewRegistry(), rec, Options{MaxRuns: 50}).Reproduce(ctx)
	if !res.Reproduced {
		t.Fatalf("chain did not reproduce: %+v", res)
	}
	p := res.Profile
	for _, id := range []lang.BranchID{0, 1} {
		bc := p.Branch(id)
		if bc.Disagreements == 0 {
			t.Errorf("b%d: forced-direction chain shows no disagreements: %+v", id, bc)
		}
		if bc.LoggedExecs == 0 {
			t.Errorf("b%d: consumed bits not charged: %+v", id, bc)
		}
	}
	if bc := p.Branch(2); bc.LoggedExecs != 0 || bc.Disagreements != 0 {
		t.Errorf("uninstrumented b2 charged logged evidence: %+v", bc)
	}
	if got := p.Demotable(plan.Instrumented); len(got) != 0 {
		t.Errorf("chain branches proposed for demotion despite disagreements: %v", got)
	}

	// The agreeing branch: bits consumed on every run, zero
	// disagreements — the exact evidence Demotable keys on.
	prog2 := compile(t, agreeBranchSrc)
	spec2 := &world.Spec{Args: []world.Stream{world.ArgSpec(0, "xx", 4)}}
	plan2 := &instrument.Plan{
		Method:       instrument.MethodDynamic,
		Instrumented: map[lang.BranchID]bool{0: true},
	}
	rec2 := record(t, prog2, spec2, plan2, map[string][]byte{"arg0": []byte("xK")})
	res2 := New(prog2, spec2, world.NewRegistry(), rec2, Options{MaxRuns: 50}).Reproduce(ctx)
	if !res2.Reproduced {
		t.Fatalf("agree fixture did not reproduce: %+v", res2)
	}
	bc := res2.Profile.Branch(0)
	if bc.Disagreements != 0 {
		t.Errorf("always-agreeing branch charged %d disagreements", bc.Disagreements)
	}
	if bc.LoggedExecs < 2 {
		t.Errorf("agreeing branch consumed %d bits, want one per completed run (>= 2)", bc.LoggedExecs)
	}
	got := res2.Profile.Demotable(plan2.Instrumented)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("Demotable = %v, want [0]", got)
	}
}
