package replay

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"

	"pathlog/internal/instrument"
	"pathlog/internal/lang"
	"pathlog/internal/oskernel"
	"pathlog/internal/trace"
	"pathlog/internal/vm"
)

// Recordings serialize to a small JSON envelope: the instrumented branch IDs
// (the plan the developer retained), the packed bitvector, the syscall
// results, and the crash site. Input bytes do not exist in this format by
// construction — there is nothing to redact.

type recordingJSON struct {
	Version      int       `json:"version"`
	Method       string    `json:"method"`
	MethodID     int       `json:"method_id"`
	Instrumented []int     `json:"instrumented_branches"`
	LogSyscalls  bool      `json:"log_syscalls"`
	TraceBits    int64     `json:"trace_bits"`
	TraceData    string    `json:"trace_data"` // base64 of packed bits
	SysReads     []int64   `json:"sys_reads,omitempty"`
	SysSelects   [][]int   `json:"sys_selects,omitempty"`
	Crash        crashJSON `json:"crash"`
}

type crashJSON struct {
	Kind int    `json:"kind"`
	Unit string `json:"unit"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Code int64  `json:"code"`
}

// Save writes the recording to path.
func (r *Recording) Save(path string) error {
	enc := recordingJSON{
		Version:     1,
		Method:      r.Plan.Method.String(),
		MethodID:    int(r.Plan.Method),
		LogSyscalls: r.Plan.LogSyscalls,
		TraceBits:   r.Trace.Len(),
		TraceData:   base64.StdEncoding.EncodeToString(r.Trace.Bytes()),
		Crash: crashJSON{
			Kind: int(r.Crash.Kind),
			Unit: r.Crash.Pos.Unit,
			Line: r.Crash.Pos.Line,
			Col:  r.Crash.Pos.Col,
			Code: r.Crash.Code,
		},
	}
	for _, id := range r.Plan.IDs() {
		enc.Instrumented = append(enc.Instrumented, int(id))
	}
	if r.SysLog != nil {
		enc.SysReads, enc.SysSelects = r.SysLog.Snapshot()
	}
	data, err := json.MarshalIndent(enc, "", "  ")
	if err != nil {
		return fmt.Errorf("replay: encode recording: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadRecording reads a recording saved by Save.
func LoadRecording(path string) (*Recording, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var enc recordingJSON
	if err := json.Unmarshal(data, &enc); err != nil {
		return nil, fmt.Errorf("replay: decode recording: %w", err)
	}
	if enc.Version != 1 {
		return nil, fmt.Errorf("replay: unsupported recording version %d", enc.Version)
	}
	bits, err := base64.StdEncoding.DecodeString(enc.TraceData)
	if err != nil {
		return nil, fmt.Errorf("replay: decode trace: %w", err)
	}
	plan := &instrument.Plan{
		Method:       instrument.Method(enc.MethodID),
		Instrumented: make(map[lang.BranchID]bool, len(enc.Instrumented)),
		LogSyscalls:  enc.LogSyscalls,
	}
	for _, id := range enc.Instrumented {
		plan.Instrumented[lang.BranchID(id)] = true
	}
	rec := &Recording{
		Plan:  plan,
		Trace: trace.FromBytes(bits, enc.TraceBits),
		Crash: vm.CrashInfo{
			Kind: vm.CrashKind(enc.Crash.Kind),
			Pos: lang.Pos{
				Unit: enc.Crash.Unit,
				Line: enc.Crash.Line,
				Col:  enc.Crash.Col,
			},
			Code: enc.Crash.Code,
		},
	}
	if enc.LogSyscalls {
		rec.SysLog = oskernel.SyscallLogFromData(enc.SysReads, enc.SysSelects)
	}
	return rec, nil
}
