package replay

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"

	"pathlog/internal/instrument"
	"pathlog/internal/lang"
	"pathlog/internal/oskernel"
	"pathlog/internal/trace"
	"pathlog/internal/vm"
)

// Recordings serialize to a small JSON envelope: the instrumented branch IDs
// (the plan the developer retained), the packed bitvector, the syscall
// results, and the crash site. Input bytes do not exist in this format by
// construction — there is nothing to redact.
//
// Version 2 additionally stamps the envelope with the plan's provenance:
// the strategy name, the program hash, the cost estimate, and the plan
// fingerprint — so the developer site can refuse a recording that does not
// match the plan or the program it is about to search under. Version 1
// envelopes (no stamp) still load, with the provenance checks skipped.
//
// Version 3 (SaveRef) is the stamped-only reference envelope for
// store-backed deployments: no branch set travels with the report at all,
// only the plan fingerprint, the program hash and the lineage stamp. The
// developer site resolves the exact retained plan generation from its plan
// store by the fingerprint; a report whose stamp matches no retained plan
// is refused by name. LoadRecording reads all three versions.

type recordingJSON struct {
	Version  int    `json:"version"`
	Method   string `json:"method,omitempty"`
	MethodID int    `json:"method_id,omitempty"`
	// Instrumented is the recording plan's branch set; absent in version-3
	// reference envelopes, which carry only the fingerprint stamp.
	Instrumented []int  `json:"instrumented_branches,omitempty"`
	LogSyscalls  bool   `json:"log_syscalls"`
	TraceBits    int64  `json:"trace_bits"`
	TraceData    string `json:"trace_data"` // base64 of packed bits
	// Version 2 provenance stamp.
	Strategy        string                   `json:"strategy,omitempty"`
	ProgHash        string                   `json:"prog_hash,omitempty"`
	Cost            *instrument.CostEstimate `json:"cost,omitempty"`
	PlanFingerprint string                   `json:"plan_fingerprint,omitempty"`
	// Refinement lineage of the plan the recording was taken under
	// (omitted for generation-0 plans, keeping old envelopes byte-stable).
	Generation int    `json:"generation,omitempty"`
	Parent     string `json:"parent,omitempty"`

	SysReads   []int64   `json:"sys_reads,omitempty"`
	SysSelects [][]int   `json:"sys_selects,omitempty"`
	Crash      crashJSON `json:"crash"`
}

type crashJSON struct {
	Kind int    `json:"kind"`
	Unit string `json:"unit"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Code int64  `json:"code"`
}

// recordingVersion is the envelope version Save writes; refVersion is the
// stamped-only reference envelope SaveRef writes.
const (
	recordingVersion = 2
	refVersion       = 3
)

// Save writes the recording to path as a version-2 envelope.
func (r *Recording) Save(path string) error {
	data, err := r.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Encode renders the recording as version-2 envelope bytes — exactly what
// Save writes to disk. This is the wire form a fleet runner ships inline to
// a remote shard worker that shares no filesystem with the parent; the
// recording must carry its plan (version-2 envelopes embed it).
func (r *Recording) Encode() ([]byte, error) {
	if r.Plan == nil {
		return nil, fmt.Errorf("replay: cannot encode version-%d envelope: recording carries no plan — resolve the stamp against a plan store first", recordingVersion)
	}
	fp := r.Fingerprint
	if fp == "" {
		fp = r.Plan.Fingerprint()
	}
	cost := r.Plan.Cost
	enc := recordingJSON{
		Version:         recordingVersion,
		Method:          r.Plan.Method.String(),
		MethodID:        int(r.Plan.Method),
		LogSyscalls:     r.Plan.LogSyscalls,
		TraceBits:       r.Trace.Len(),
		TraceData:       base64.StdEncoding.EncodeToString(r.Trace.Bytes()),
		Strategy:        r.Plan.Strategy,
		ProgHash:        r.Plan.ProgHash,
		Cost:            &cost,
		PlanFingerprint: fp,
		Generation:      r.Plan.Generation,
		Parent:          r.Plan.Parent,
		Crash: crashJSON{
			Kind: int(r.Crash.Kind),
			Unit: r.Crash.Pos.Unit,
			Line: r.Crash.Pos.Line,
			Col:  r.Crash.Pos.Col,
			Code: r.Crash.Code,
		},
	}
	for _, id := range r.Plan.IDs() {
		enc.Instrumented = append(enc.Instrumented, int(id))
	}
	if r.SysLog != nil {
		enc.SysReads, enc.SysSelects = r.SysLog.Snapshot()
	}
	data, err := json.MarshalIndent(enc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("replay: encode recording: %w", err)
	}
	return data, nil
}

// SaveRef writes the recording to path as a stamped-only reference
// envelope (version 3): the plan fingerprint, program hash and lineage
// stamp travel with the report, but the branch set does not — the
// developer site resolves the retained plan from its plan store by the
// stamp. The recording must carry a plan or an explicit fingerprint to
// stamp with.
func (r *Recording) SaveRef(path string) error {
	data, err := r.EncodeRef()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// EncodeRef renders the recording as version-3 reference envelope bytes —
// exactly what SaveRef writes to disk and what a user site POSTs to an
// intake service. The bytes are the report's wire identity: the intake
// journal and bucket files store them verbatim, so a stored report is
// byte-identical to what the site shipped.
func (r *Recording) EncodeRef() ([]byte, error) {
	fp := r.Fingerprint
	progHash := r.ProgHash
	generation := 0
	parent := ""
	logSyscalls := r.SysLog != nil
	if r.Plan != nil {
		if fp == "" {
			fp = r.Plan.Fingerprint()
		}
		if progHash == "" {
			progHash = r.Plan.ProgHash
		}
		generation = r.Plan.Generation
		parent = r.Plan.Parent
		logSyscalls = r.Plan.LogSyscalls
	}
	if fp == "" {
		return nil, fmt.Errorf("replay: cannot save reference recording: no plan and no fingerprint stamp")
	}
	enc := recordingJSON{
		Version:         refVersion,
		LogSyscalls:     logSyscalls,
		TraceBits:       r.Trace.Len(),
		TraceData:       base64.StdEncoding.EncodeToString(r.Trace.Bytes()),
		ProgHash:        progHash,
		PlanFingerprint: fp,
		Generation:      generation,
		Parent:          parent,
		Crash: crashJSON{
			Kind: int(r.Crash.Kind),
			Unit: r.Crash.Pos.Unit,
			Line: r.Crash.Pos.Line,
			Col:  r.Crash.Pos.Col,
			Code: r.Crash.Code,
		},
	}
	if r.SysLog != nil {
		enc.SysReads, enc.SysSelects = r.SysLog.Snapshot()
	}
	data, err := json.MarshalIndent(enc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("replay: encode recording: %w", err)
	}
	return data, nil
}

// LoadRecording reads a recording saved by Save or SaveRef (envelope
// version 1, 2 or 3), rejecting structurally corrupt envelopes: negative,
// duplicate or descending branch IDs, and a trace_bits count inconsistent
// with the decoded trace_data length. A version-3 reference envelope loads
// with a nil Plan and the Fingerprint stamp set; it cannot be replayed
// until the retained plan is resolved from a plan store. Callers that know
// the target program should prefer LoadRecordingFor, which additionally
// rejects plans that do not fit the program.
func LoadRecording(path string) (*Recording, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeRecording(data)
}

// DecodeRecording decodes recording envelope bytes (any version
// LoadRecording reads). It is the wire-side entry point: an intake service
// receives envelopes as HTTP bodies, not files, and must validate them with
// exactly the rules the file loader applies.
func DecodeRecording(data []byte) (*Recording, error) {
	var enc recordingJSON
	if err := json.Unmarshal(data, &enc); err != nil {
		return nil, fmt.Errorf("replay: decode recording: %w", err)
	}
	if enc.Version != 1 && enc.Version != recordingVersion && enc.Version != refVersion {
		return nil, fmt.Errorf("replay: unsupported recording version %d (this build reads 1, %d and %d)",
			enc.Version, recordingVersion, refVersion)
	}
	bits, err := base64.StdEncoding.DecodeString(enc.TraceData)
	if err != nil {
		return nil, fmt.Errorf("replay: decode trace: %w", err)
	}
	if enc.TraceBits < 0 {
		return nil, fmt.Errorf("replay: decode recording: negative trace_bits %d", enc.TraceBits)
	}
	if want := (enc.TraceBits + 7) / 8; int64(len(bits)) != want {
		return nil, fmt.Errorf("replay: decode recording: trace_bits %d needs %d bytes, trace_data decodes to %d",
			enc.TraceBits, want, len(bits))
	}
	if enc.Generation < 0 {
		return nil, fmt.Errorf("replay: decode recording: negative generation %d", enc.Generation)
	}
	rec := &Recording{
		Trace:       trace.FromBytes(bits, enc.TraceBits),
		Fingerprint: enc.PlanFingerprint,
		ProgHash:    enc.ProgHash,
		Crash: vm.CrashInfo{
			Kind: vm.CrashKind(enc.Crash.Kind),
			Pos: lang.Pos{
				Unit: enc.Crash.Unit,
				Line: enc.Crash.Line,
				Col:  enc.Crash.Col,
			},
			Code: enc.Crash.Code,
		},
	}
	if enc.Version == refVersion {
		// Reference envelope: the stamp is the only plan identity, so its
		// absence (or a smuggled branch set) is corruption, not data.
		if enc.PlanFingerprint == "" {
			return nil, fmt.Errorf("replay: decode recording: version %d reference envelope has no plan fingerprint stamp", refVersion)
		}
		if len(enc.Instrumented) > 0 {
			return nil, fmt.Errorf("replay: decode recording: version %d reference envelope carries %d instrumented branches (stamp-only envelopes must not embed a plan)",
				refVersion, len(enc.Instrumented))
		}
		if enc.LogSyscalls {
			rec.SysLog = oskernel.SyscallLogFromData(enc.SysReads, enc.SysSelects)
		}
		return rec, nil
	}
	set, err := instrument.DecodeBranchSet(enc.Instrumented)
	if err != nil {
		return nil, fmt.Errorf("replay: decode recording: %w", err)
	}
	plan := &instrument.Plan{
		Method:       instrument.Method(enc.MethodID),
		Strategy:     enc.Strategy,
		Instrumented: set,
		LogSyscalls:  enc.LogSyscalls,
		ProgHash:     enc.ProgHash,
		Generation:   enc.Generation,
		Parent:       enc.Parent,
	}
	if enc.Cost != nil {
		plan.Cost = *enc.Cost
	}
	rec.Plan = plan
	if enc.Version >= 2 && enc.PlanFingerprint != "" {
		if got := plan.Fingerprint(); got != enc.PlanFingerprint {
			return nil, fmt.Errorf("replay: decode recording: plan fingerprint mismatch: stamp %s, content hashes to %s",
				enc.PlanFingerprint, got)
		}
	}
	if enc.LogSyscalls {
		rec.SysLog = oskernel.SyscallLogFromData(enc.SysReads, enc.SysSelects)
	}
	return rec, nil
}

// LoadRecordingFor reads a recording and validates it against the program
// it will be replayed on: branch IDs must name existing branch sites and a
// recorded program hash must match. This is the loader the developer site
// should use — a recording from a different build fails here, not as a
// nonsense search result.
func LoadRecordingFor(path string, prog *lang.Program) (*Recording, error) {
	rec, err := LoadRecording(path)
	if err != nil {
		return nil, err
	}
	if err := rec.Validate(prog); err != nil {
		return nil, err
	}
	return rec, nil
}

// DecodeRecordingFor decodes recording envelope bytes and validates them
// against the program they will be replayed on — the wire-side counterpart
// of LoadRecordingFor, used by worker daemons that receive envelopes inline
// over HTTP instead of as staged files.
func DecodeRecordingFor(data []byte, prog *lang.Program) (*Recording, error) {
	rec, err := DecodeRecording(data)
	if err != nil {
		return nil, err
	}
	if err := rec.Validate(prog); err != nil {
		return nil, err
	}
	return rec, nil
}
