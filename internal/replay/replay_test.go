package replay

import (
	"context"
	"sync"
	"testing"
	"time"

	"pathlog/internal/concolic"
	"pathlog/internal/instrument"
	"pathlog/internal/lang"
	"pathlog/internal/oskernel"
	"pathlog/internal/static"
	"pathlog/internal/trace"
	"pathlog/internal/vm"
	"pathlog/internal/world"
)

// fixture compiles a program, records a crash under a plan, and returns
// everything needed to replay.
type fixture struct {
	prog *lang.Program
	spec *world.Spec
	rec  *Recording
}

func compile(t *testing.T, src string) *lang.Program {
	t.Helper()
	u, err := lang.ParseUnit("t.mc", lang.RegionApp, src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := lang.Link([]*lang.Unit{u})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// record runs the program on userArgs under the plan and captures the log.
func record(t *testing.T, prog *lang.Program, spec *world.Spec, plan *instrument.Plan, userArgs map[string][]byte) *Recording {
	t.Helper()
	userSpec := *spec
	userSpec.Args = append([]world.Stream(nil), spec.Args...)
	for i := range userSpec.Args {
		if b, ok := userArgs[userSpec.Args[i].Name]; ok {
			userSpec.Args[i].Seed = b
		}
	}
	w := world.NewWorld(&userSpec, world.NewRegistry(), nil)
	w.Symbolic = false
	cfg := w.KernelConfig()
	cfg.Mode = oskernel.ModeRecord
	var sysLog *oskernel.SyscallLog
	if plan.LogSyscalls {
		sysLog = oskernel.NewSyscallLog()
		cfg.Log = sysLog
		cfg.LogSyscalls = true
	}
	kern := oskernel.New(cfg)
	logger := instrument.NewLogger(plan)
	res, err := vm.New(prog, vm.Options{Kernel: kern, Sink: logger}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Crashed {
		t.Fatal("fixture run did not crash")
	}
	return &Recording{Plan: plan, Trace: logger.Finish(), SysLog: sysLog, Crash: res.Crash}
}

const twoByteGuard = `
int main() {
	char a[8];
	getarg(0, a, 8);
	if (a[0] == 'P') {
		if (a[1] == 'Q') {
			crash(1);
		}
	}
	return 0;
}
`

func buildFixture(t *testing.T, method instrument.Method) *fixture {
	prog := compile(t, twoByteGuard)
	spec := &world.Spec{Args: []world.Stream{world.ArgSpec(0, "ab", 4)}}
	analysis := concolic.New(prog, spec, world.NewRegistry(), concolic.Options{MaxRuns: 40})
	in := instrument.Inputs{
		Dynamic: analysis.Explore(context.Background()),
		Static:  static.Analyze(prog, static.Options{}),
	}
	plan := instrument.BuildPlan(prog, method, in, true)
	rec := record(t, prog, spec, plan, map[string][]byte{"arg0": []byte("PQ")})
	return &fixture{prog: prog, spec: spec, rec: rec}
}

func TestReproduceWithFullLog(t *testing.T) {
	f := buildFixture(t, instrument.MethodAll)
	eng := New(f.prog, f.spec, world.NewRegistry(), f.rec, Options{MaxRuns: 200})
	res := eng.Reproduce(context.Background())
	if !res.Reproduced {
		t.Fatalf("not reproduced: %+v", res)
	}
	if res.InputBytes["arg0"][0] != 'P' || res.InputBytes["arg0"][1] != 'Q' {
		t.Fatalf("input: %q", res.InputBytes["arg0"])
	}
	if res.SymNotLoggedLocs != 0 {
		t.Errorf("all-branches replay saw unlogged symbolic branches: %d", res.SymNotLoggedLocs)
	}
	if res.SymLoggedExecs == 0 {
		t.Error("no logged symbolic executions counted")
	}
}

func TestReproduceWithEmptyPlan(t *testing.T) {
	// No branches instrumented: pure symbolic search guided only by the
	// crash site (the ESD-like degenerate case).
	prog := compile(t, twoByteGuard)
	spec := &world.Spec{Args: []world.Stream{world.ArgSpec(0, "ab", 4)}}
	plan := &instrument.Plan{
		Method:       instrument.MethodDynamic,
		Instrumented: map[lang.BranchID]bool{},
	}
	rec := record(t, prog, spec, plan, map[string][]byte{"arg0": []byte("PQ")})
	if rec.Trace.Len() != 0 {
		t.Fatalf("trace should be empty, got %d bits", rec.Trace.Len())
	}
	eng := New(prog, spec, world.NewRegistry(), rec, Options{MaxRuns: 500})
	res := eng.Reproduce(context.Background())
	if !res.Reproduced {
		t.Fatalf("not reproduced: %+v", res)
	}
	if res.SymNotLoggedLocs == 0 {
		t.Error("unlogged symbolic locations expected with an empty plan")
	}
}

func TestRunsOrderedByInstrumentationDensity(t *testing.T) {
	// Fewer instrumented branches must not make replay cheaper: the
	// all-branches fixture needs at most as many runs as the empty plan.
	full := buildFixture(t, instrument.MethodAll)
	engFull := New(full.prog, full.spec, world.NewRegistry(), full.rec, Options{MaxRuns: 500})
	resFull := engFull.Reproduce(context.Background())

	prog := compile(t, twoByteGuard)
	spec := &world.Spec{Args: []world.Stream{world.ArgSpec(0, "ab", 4)}}
	empty := &instrument.Plan{Method: instrument.MethodDynamic, Instrumented: map[lang.BranchID]bool{}}
	rec := record(t, prog, spec, empty, map[string][]byte{"arg0": []byte("PQ")})
	engEmpty := New(prog, spec, world.NewRegistry(), rec, Options{MaxRuns: 500})
	resEmpty := engEmpty.Reproduce(context.Background())

	if !resFull.Reproduced || !resEmpty.Reproduced {
		t.Fatalf("full=%v empty=%v", resFull.Reproduced, resEmpty.Reproduced)
	}
	if resFull.Runs > resEmpty.Runs {
		t.Errorf("full log used more runs (%d) than no log (%d)", resFull.Runs, resEmpty.Runs)
	}
}

func TestWrongCrashSiteRejected(t *testing.T) {
	// Tamper with the recorded crash site: replay must not claim success.
	f := buildFixture(t, instrument.MethodAll)
	f.rec.Crash.Pos.Line += 100
	eng := New(f.prog, f.spec, world.NewRegistry(), f.rec, Options{MaxRuns: 50})
	res := eng.Reproduce(context.Background())
	if res.Reproduced {
		t.Fatal("reproduction claimed for a different crash site")
	}
}

func TestTraceTampering(t *testing.T) {
	// Flip the recorded trace to all-false: the recorded path is then
	// impossible and replay must fail (or time out), not misreport.
	prog := compile(t, twoByteGuard)
	spec := &world.Spec{Args: []world.Stream{world.ArgSpec(0, "ab", 4)}}
	in := instrument.Inputs{
		Dynamic: concolic.New(prog, spec, world.NewRegistry(), concolic.Options{MaxRuns: 40}).Explore(context.Background()),
		Static:  static.Analyze(prog, static.Options{}),
	}
	plan := instrument.BuildPlan(prog, instrument.MethodAll, in, true)
	rec := record(t, prog, spec, plan, map[string][]byte{"arg0": []byte("PQ")})

	w := trace.NewWriter()
	for i := int64(0); i < rec.Trace.Len(); i++ {
		w.Append(false)
	}
	rec.Trace = w.Finish()
	eng := New(prog, spec, world.NewRegistry(), rec, Options{MaxRuns: 100, TimeBudget: 5 * time.Second})
	res := eng.Reproduce(context.Background())
	if res.Reproduced {
		t.Fatal("reproduced an impossible trace")
	}
}

func TestStatsConsistency(t *testing.T) {
	f := buildFixture(t, instrument.MethodAll)
	eng := New(f.prog, f.spec, world.NewRegistry(), f.rec, Options{MaxRuns: 200})
	res := eng.Reproduce(context.Background())
	if !res.Reproduced {
		t.Fatal("not reproduced")
	}
	if res.Runs < 1 || res.Aborts != res.Runs-1 {
		t.Errorf("runs=%d aborts=%d", res.Runs, res.Aborts)
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed not measured")
	}
	if res.SymLoggedLocs > len(f.prog.Branches) {
		t.Error("more logged locations than branches exist")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() int {
		f := buildFixture(t, instrument.MethodDynamicStatic)
		eng := New(f.prog, f.spec, world.NewRegistry(), f.rec, Options{MaxRuns: 300})
		res := eng.Reproduce(context.Background())
		if !res.Reproduced {
			t.Fatal("not reproduced")
		}
		return res.Runs
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic replay: %d vs %d runs", a, b)
	}
}

func TestPickHeuristicAblation(t *testing.T) {
	// Both heuristics must reproduce; the paper uses depth-first (§3.2).
	for _, fifo := range []bool{false, true} {
		f := buildFixture(t, instrument.MethodDynamic)
		eng := New(f.prog, f.spec, world.NewRegistry(), f.rec,
			Options{MaxRuns: 1000, PickFIFO: fifo})
		res := eng.Reproduce(context.Background())
		if !res.Reproduced {
			t.Errorf("fifo=%v: not reproduced after %d runs", fifo, res.Runs)
		}
	}
}

func TestParallelWorkersReproduce(t *testing.T) {
	// Every worker count must reproduce what the serial engine does, and
	// the echoed worker count must match the request.
	for _, workers := range []int{1, 2, 4} {
		f := buildFixture(t, instrument.MethodDynamicStatic)
		eng := New(f.prog, f.spec, world.NewRegistry(), f.rec,
			Options{MaxRuns: 300, Workers: workers})
		res := eng.Reproduce(context.Background())
		if !res.Reproduced {
			t.Fatalf("workers=%d: not reproduced: %+v", workers, res)
		}
		if res.Workers != workers {
			t.Fatalf("workers=%d echoed as %d", workers, res.Workers)
		}
		got := res.InputBytes["arg0"]
		if got[0] != 'P' || got[1] != 'Q' {
			t.Fatalf("workers=%d: input %q", workers, got)
		}
	}
}

func TestReproduceContextCancelled(t *testing.T) {
	f := buildFixture(t, instrument.MethodAll)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := New(f.prog, f.spec, world.NewRegistry(), f.rec, Options{MaxRuns: 200})
	res := eng.Reproduce(ctx)
	if res.Reproduced || !res.Cancelled || res.Runs != 0 {
		t.Fatalf("pre-cancelled replay: %+v", res)
	}
}

func TestReproduceContextDeadlineReportsTimeout(t *testing.T) {
	f := buildFixture(t, instrument.MethodAll)
	ctx, cancel := context.WithDeadline(context.Background(),
		time.Now().Add(-time.Second))
	defer cancel()
	eng := New(f.prog, f.spec, world.NewRegistry(), f.rec, Options{MaxRuns: 200})
	res := eng.Reproduce(ctx)
	if res.Reproduced || !res.TimedOut || res.Cancelled {
		t.Fatalf("expired-deadline replay: %+v", res)
	}
}

func TestParallelOnRunMonotonic(t *testing.T) {
	f := buildFixture(t, instrument.MethodDynamic)
	var mu sync.Mutex
	var seen []int
	eng := New(f.prog, f.spec, world.NewRegistry(), f.rec, Options{
		MaxRuns: 300,
		Workers: 4,
		OnRun: func(completed int) {
			mu.Lock()
			seen = append(seen, completed)
			mu.Unlock()
		},
	})
	res := eng.Reproduce(context.Background())
	if !res.Reproduced {
		t.Fatalf("not reproduced: %+v", res)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) == 0 {
		t.Fatal("no OnRun callbacks")
	}
	for i, n := range seen {
		if n != i+1 {
			t.Fatalf("OnRun sequence %v not monotonically complete", seen)
		}
	}
}
