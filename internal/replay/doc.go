// Package replay implements the paper's bug reproduction engine (§3): a
// symbolic execution engine guided by the partial branch log recorded at the
// user site.
//
// The engine performs a sequence of concolic runs. Each run executes the
// program with fully concrete inputs while the branch sink enforces the
// recorded bitvector: at every instrumented branch the next bit is consumed
// and compared with the direction the current input takes. The four cases of
// §3.1 are implemented literally:
//
//  1. symbolic, not instrumented — record the constraint, queue the negated
//     alternative on the pending list, continue;
//  2. symbolic, instrumented — on agreement record the constraint and
//     continue; on disagreement queue the constraint set that forces the
//     recorded direction and abort the run;
//  3. concrete, instrumented — on agreement continue; on disagreement abort
//     (an earlier uninstrumented symbolic branch went the wrong way);
//  4. concrete, not instrumented — continue.
//
// When a run aborts, the engine pops a pending constraint set (depth-first,
// §3.2), solves it for a new input, and starts over. Reproduction succeeds
// when a run crashes at the recorded bug site having matched the entire
// bitvector.
//
// The search is context-aware and optionally parallel: Options.Workers > 1
// fans the pending-list exploration out over a pool of workers that share
// the pending stack and the variable registry but own their solvers and
// per-run worlds. The reproduction with the lowest run sequence number wins.
//
// Recordings are durable bug reports. Save writes the full envelope
// (version 2): the plan the user site recorded under, the packed
// bitvector, optional syscall results and the crash site — never input
// bytes. SaveRef writes the stamped-only reference envelope (version 3)
// for deployments where the developer site retains every shipped plan in a
// plan store (internal/store): the report carries just the plan's
// fingerprint stamp, and replay resolves the exact retained plan
// generation from the store by that stamp. LoadRecording reads all three
// versions; LoadRecordingFor additionally validates the embedded plan
// against the program it will be searched on.
package replay
