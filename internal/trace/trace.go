// Package trace implements the branch log: one bit per executed instrumented
// branch, buffered in a fixed 4096-byte buffer that is flushed to (simulated)
// stable storage when full — the exact format of §4 ("a bit per branch in a
// large buffer... a buffer of 4KB in order to avoid writing to disk too
// often. We do not use any form of online compression").
package trace

import (
	"bytes"
	"compress/gzip"
	"fmt"
)

// BufferSize is the logger's flush granularity in bytes (§4).
const BufferSize = 4096

// Trace is a completed branch log: the bit sequence of taken/not-taken
// directions of instrumented branches, in execution order.
type Trace struct {
	bits []byte
	n    int64
}

// FromBytes reconstructs a trace from its packed byte form and bit count,
// as produced by Bytes and Len (recording deserialization).
func FromBytes(bits []byte, n int64) *Trace {
	if n < 0 {
		n = 0
	}
	if max := int64(len(bits)) * 8; n > max {
		n = max
	}
	return &Trace{bits: bits, n: n}
}

// Len returns the number of recorded bits.
func (t *Trace) Len() int64 { return t.n }

// Bit returns the i-th recorded bit; out-of-range reads return false.
func (t *Trace) Bit(i int64) bool {
	if i < 0 || i >= t.n {
		return false
	}
	return t.bits[i>>3]&(1<<uint(i&7)) != 0
}

// Bytes returns the packed bit storage (ceil(n/8) bytes).
func (t *Trace) Bytes() []byte { return t.bits }

// SizeBytes returns the storage footprint in bytes.
func (t *Trace) SizeBytes() int64 { return int64(len(t.bits)) }

// String implements fmt.Stringer.
func (t *Trace) String() string {
	return fmt.Sprintf("trace{%d bits, %d bytes}", t.n, len(t.bits))
}

// CompressionRatio gzips the log and returns raw/compressed, reproducing the
// paper's 10-20x observation for branch logs. Tiny logs report 1.
func (t *Trace) CompressionRatio() float64 {
	if len(t.bits) == 0 {
		return 1
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(t.bits); err != nil {
		return 1
	}
	if err := zw.Close(); err != nil {
		return 1
	}
	if buf.Len() == 0 {
		return 1
	}
	return float64(len(t.bits)) / float64(buf.Len())
}

// Writer accumulates branch bits through the flush buffer, counting flushes.
// The buffered write path is deliberately real work — set a bit, advance a
// cursor, occasionally copy out the buffer — because the paper's
// instrumentation overhead measurements are measurements of exactly this
// code path.
type Writer struct {
	buf     []byte
	bitPos  int // bit position within buf
	flushed []byte
	flushes int
}

// NewWriter returns an empty Writer with the paper's 4KB flush buffer.
func NewWriter() *Writer { return NewWriterSize(BufferSize) }

// NewWriterSize returns a Writer with a custom flush-buffer size, for the
// buffer-size ablation. Sizes below 1 byte are clamped.
func NewWriterSize(bufBytes int) *Writer {
	if bufBytes < 1 {
		bufBytes = 1
	}
	return &Writer{buf: make([]byte, bufBytes)}
}

// Append records one branch direction.
func (w *Writer) Append(taken bool) {
	if taken {
		w.buf[w.bitPos>>3] |= 1 << uint(w.bitPos&7)
	}
	w.bitPos++
	if w.bitPos == len(w.buf)*8 {
		w.flush()
	}
}

func (w *Writer) flush() {
	w.flushed = append(w.flushed, w.buf...)
	for i := range w.buf {
		w.buf[i] = 0
	}
	w.bitPos = 0
	w.flushes++
}

// Bits returns the number of bits appended so far.
func (w *Writer) Bits() int64 {
	return int64(len(w.flushed))*8 + int64(w.bitPos)
}

// Flushes returns how many full-buffer flushes have happened.
func (w *Writer) Flushes() int { return w.flushes }

// Finish flushes the partial buffer and returns the completed trace.
func (w *Writer) Finish() *Trace {
	n := w.Bits()
	partial := (w.bitPos + 7) / 8
	bits := make([]byte, 0, len(w.flushed)+partial)
	bits = append(bits, w.flushed...)
	bits = append(bits, w.buf[:partial]...)
	return &Trace{bits: bits, n: n}
}

// Reader walks a trace bit by bit; the replay engine resets it per run.
type Reader struct {
	t   *Trace
	pos int64
}

// NewReader returns a reader positioned at the first bit.
func NewReader(t *Trace) *Reader { return &Reader{t: t} }

// Next consumes and returns the next bit; ok is false past the end.
func (r *Reader) Next() (bit bool, ok bool) {
	if r.pos >= r.t.Len() {
		return false, false
	}
	b := r.t.Bit(r.pos)
	r.pos++
	return b, true
}

// Pos returns how many bits have been consumed.
func (r *Reader) Pos() int64 { return r.pos }

// Rewind restarts from the first bit.
func (r *Reader) Rewind() { r.pos = 0 }

// Exhausted reports whether every bit has been consumed.
func (r *Reader) Exhausted() bool { return r.pos >= r.t.Len() }
