package trace

import (
	"testing"
	"testing/quick"
)

func TestRoundTripSmall(t *testing.T) {
	w := NewWriter()
	pattern := []bool{true, false, true, true, false, false, true, false, true}
	for _, b := range pattern {
		w.Append(b)
	}
	tr := w.Finish()
	if tr.Len() != int64(len(pattern)) {
		t.Fatalf("len: %d", tr.Len())
	}
	for i, want := range pattern {
		if tr.Bit(int64(i)) != want {
			t.Errorf("bit %d: got %v", i, tr.Bit(int64(i)))
		}
	}
	if tr.SizeBytes() != 2 {
		t.Errorf("size: %d bytes", tr.SizeBytes())
	}
}

func TestOutOfRangeBit(t *testing.T) {
	w := NewWriter()
	w.Append(true)
	tr := w.Finish()
	if tr.Bit(-1) || tr.Bit(1) || tr.Bit(100) {
		t.Error("out-of-range bits must read false")
	}
}

func TestFlushBoundary(t *testing.T) {
	w := NewWriter()
	n := BufferSize*8*2 + 5 // two full flushes plus a partial
	for i := 0; i < n; i++ {
		w.Append(i%3 == 0)
	}
	if w.Flushes() != 2 {
		t.Fatalf("flushes: %d", w.Flushes())
	}
	if w.Bits() != int64(n) {
		t.Fatalf("bits: %d", w.Bits())
	}
	tr := w.Finish()
	if tr.Len() != int64(n) {
		t.Fatalf("trace len: %d", tr.Len())
	}
	for i := 0; i < n; i++ {
		if tr.Bit(int64(i)) != (i%3 == 0) {
			t.Fatalf("bit %d wrong", i)
		}
	}
	// Storage: 2 full buffers + 1 partial byte.
	if tr.SizeBytes() != BufferSize*2+1 {
		t.Fatalf("size: %d", tr.SizeBytes())
	}
}

func TestReader(t *testing.T) {
	w := NewWriter()
	bits := []bool{true, true, false, true}
	for _, b := range bits {
		w.Append(b)
	}
	r := NewReader(w.Finish())
	for i, want := range bits {
		got, ok := r.Next()
		if !ok || got != want {
			t.Fatalf("next %d: %v %v", i, got, ok)
		}
	}
	if _, ok := r.Next(); ok {
		t.Error("reader should be exhausted")
	}
	if !r.Exhausted() || r.Pos() != 4 {
		t.Errorf("pos: %d exhausted: %v", r.Pos(), r.Exhausted())
	}
	r.Rewind()
	if r.Pos() != 0 || r.Exhausted() {
		t.Error("rewind failed")
	}
	if b, ok := r.Next(); !ok || !b {
		t.Error("first bit after rewind")
	}
}

func TestEmptyTrace(t *testing.T) {
	tr := NewWriter().Finish()
	if tr.Len() != 0 || tr.SizeBytes() != 0 {
		t.Fatalf("empty trace: %v", tr)
	}
	r := NewReader(tr)
	if !r.Exhausted() {
		t.Error("empty trace reader should be exhausted")
	}
	if tr.CompressionRatio() != 1 {
		t.Error("empty trace ratio should be 1")
	}
}

func TestCompressionRatioOnBiasedLog(t *testing.T) {
	// Branch logs are highly biased (loops mostly take one direction); gzip
	// should achieve the paper's 10-20x on such data.
	w := NewWriter()
	for i := 0; i < BufferSize*8*4; i++ {
		w.Append(i%97 == 0) // rare "not taken"
	}
	ratio := w.Finish().CompressionRatio()
	if ratio < 10 {
		t.Errorf("ratio: %.1f, want >= 10 on biased log", ratio)
	}
}

func TestStringer(t *testing.T) {
	w := NewWriter()
	w.Append(true)
	got := w.Finish().String()
	if got != "trace{1 bits, 1 bytes}" {
		t.Errorf("string: %q", got)
	}
}

// TestQuickRoundTrip property-checks arbitrary bit patterns across the flush
// boundary.
func TestQuickRoundTrip(t *testing.T) {
	f := func(pattern []bool, pad uint16) bool {
		w := NewWriter()
		// Shift the pattern deep into the buffer to cross byte boundaries.
		for i := 0; i < int(pad); i++ {
			w.Append(false)
		}
		for _, b := range pattern {
			w.Append(b)
		}
		tr := w.Finish()
		if tr.Len() != int64(int(pad)+len(pattern)) {
			return false
		}
		for i, want := range pattern {
			if tr.Bit(int64(int(pad)+i)) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestWriterSizeAblation(t *testing.T) {
	// Smaller buffers flush more often for the same bit stream; content is
	// unchanged.
	bits := 64 * 8 // 64 bytes of bits
	sizes := []int{1, 8, 64}
	var flushes []int
	for _, sz := range sizes {
		w := NewWriterSize(sz)
		for i := 0; i < bits; i++ {
			w.Append(i%5 == 0)
		}
		tr := w.Finish()
		if tr.Len() != int64(bits) {
			t.Fatalf("size %d: len %d", sz, tr.Len())
		}
		for i := 0; i < bits; i++ {
			if tr.Bit(int64(i)) != (i%5 == 0) {
				t.Fatalf("size %d: bit %d wrong", sz, i)
			}
		}
		flushes = append(flushes, w.Flushes())
	}
	if !(flushes[0] > flushes[1] && flushes[1] > flushes[2]) {
		t.Errorf("flush counts not decreasing with buffer size: %v", flushes)
	}
	if NewWriterSize(0) == nil {
		t.Error("zero size must clamp")
	}
}
