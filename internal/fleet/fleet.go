// Package fleet fans corpus replay shards out over HTTP to a pool of
// shard worker daemons (cmd/shardworkerd). The RemoteRunner implements
// corpus.Runner on top of the same JSON ShardRequest/ShardResponse
// protocol the subprocess runner speaks, adding what a network demands:
// per-worker health probing and EWMA latency accounting, work-stealing
// duplicate dispatch of slow shards (first valid response wins, the loser
// is cancelled), and retry with capped exponential backoff on worker death
// or malformed responses. Distribution moves bytes, not trust: every
// response still flows through the verifying corpus.Merger, which refuses
// foreign and stale profiles by name and collapses the duplicate shard
// deliveries stealing can produce into exactly one merge.
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"pathlog/internal/corpus"
	"pathlog/internal/obs"
	"pathlog/internal/replay"
)

// Defaults for the RemoteRunner's failure-handling knobs.
const (
	// DefaultMaxAttempts is how many dispatch waves a shard gets before the
	// runner gives up (each wave may include a stolen duplicate).
	DefaultMaxAttempts = 4
	// DefaultBackoffBase and DefaultBackoffCap bound the exponential
	// backoff between waves.
	DefaultBackoffBase = 50 * time.Millisecond
	DefaultBackoffCap  = 2 * time.Second
	// DefaultStealFactor scales a worker's EWMA latency into the steal
	// deadline: a shard outstanding for longer than factor×EWMA is
	// duplicated onto a second worker.
	DefaultStealFactor = 3.0
	// DefaultProbeTimeout bounds one /healthz probe.
	DefaultProbeTimeout = 2 * time.Second
	// ewmaAlpha weighs the newest latency observation.
	ewmaAlpha = 0.3
)

// Metrics is a point-in-time snapshot of a RemoteRunner's counters — the
// numbers the chaos tests assert nonzero.
type Metrics struct {
	// Dispatched counts shard POSTs sent (including stolen duplicates).
	Dispatched int64 `json:"dispatched"`
	// Retries counts requeued waves after a failed dispatch.
	Retries int64 `json:"retries"`
	// Steals counts duplicate dispatches of slow shards; StolenWins counts
	// the duplicates that answered first.
	Steals     int64 `json:"steals"`
	StolenWins int64 `json:"stolen_wins"`
	// WorkerFailures counts transport-level dispatch failures (connection
	// refused, timeout, 5xx, hangup).
	WorkerFailures int64 `json:"worker_failures"`
	// Malformed counts undecodable or wrong-shaped response bodies;
	// Refused counts response-level refusals (protocol or shard mismatch,
	// worker-reported errors).
	Malformed int64 `json:"malformed"`
	Refused   int64 `json:"refused"`
	// ProbeFailures counts /healthz probes that found a worker dead.
	ProbeFailures int64 `json:"probe_failures"`
}

// WorkerStatus is one worker's health snapshot.
type WorkerStatus struct {
	URL        string  `json:"url"`
	Up         bool    `json:"up"`
	EWMAMillis float64 `json:"ewma_ms"`
	Inflight   int     `json:"inflight"`
	Dispatches int64   `json:"dispatches"`
	Failures   int64   `json:"failures"`
}

// Event is one journal entry of the runner's failure handling — the
// shared obs schema, so the runner's journal, the harness artifacts and
// the span stream all speak one format. Kinds: dispatch, response,
// failure, retry, steal, steal_win, worker_down, worker_up, probe_failed.
// Events emitted under an active span carry its trace/span IDs.
type Event = obs.Event

// workerState is the runner's per-worker accounting.
type workerState struct {
	url string

	mu       sync.Mutex
	ewmaMS   float64
	inflight int
	down     bool

	dispatches atomic.Int64
	failures   atomic.Int64
}

func (w *workerState) begin() {
	w.mu.Lock()
	w.inflight++
	w.mu.Unlock()
	w.dispatches.Add(1)
}

func (w *workerState) end(elapsed time.Duration, ok bool) {
	w.mu.Lock()
	w.inflight--
	if ok {
		ms := float64(elapsed.Milliseconds())
		if w.ewmaMS == 0 {
			w.ewmaMS = ms
		} else {
			w.ewmaMS = ewmaAlpha*ms + (1-ewmaAlpha)*w.ewmaMS
		}
	}
	w.mu.Unlock()
	if !ok {
		w.failures.Add(1)
	}
}

func (w *workerState) markDown() {
	w.mu.Lock()
	w.down = true
	w.mu.Unlock()
}

func (w *workerState) markUp() {
	w.mu.Lock()
	w.down = false
	w.mu.Unlock()
}

func (w *workerState) isUp() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return !w.down
}

func (w *workerState) load() (inflight int, ewmaMS float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.inflight, w.ewmaMS
}

// RemoteRunner implements corpus.Runner over a pool of HTTP shard worker
// daemons. Shards ship with their recording envelopes inline (version-2,
// plan embedded), so workers need neither a shared filesystem nor a plan
// store. The zero knobs all default sensibly; construct with
// NewRemoteRunner for the common case.
type RemoteRunner struct {
	// Workers is the pool, as host:port or http URLs.
	Workers []string
	// Scenario names the program and input space (apps.ScenarioByName).
	Scenario string
	// Opts bound each report's replay inside the worker.
	Opts replay.Options
	// Transport carries requests (nil = HTTPTransport). Fault-injection
	// tests replace it.
	Transport Transport
	// MaxAttempts, BackoffBase, BackoffCap bound the retry loop
	// (0 = the Default* constants).
	MaxAttempts int
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// StealAfter is the floor before a slow shard is duplicated onto a
	// second worker; the effective deadline is
	// max(StealAfter, StealFactor×EWMA). With StealAfter zero and no
	// latency history yet, stealing waits for history.
	StealAfter time.Duration
	// StealFactor scales EWMA latency into the steal deadline
	// (0 = DefaultStealFactor).
	StealFactor float64
	// RequestTimeout bounds one dispatch (0 = bounded by the caller's
	// context only).
	RequestTimeout time.Duration
	// ProbeTimeout bounds one /healthz probe (0 = DefaultProbeTimeout).
	ProbeTimeout time.Duration
	// OnEvent, when set, receives a Event per dispatch/failure/steal; it
	// may be called from concurrent shard goroutines and must be
	// goroutine-safe.
	OnEvent func(Event)
	// Events, when set, journals every event as one JSONL line — the same
	// stream OnEvent observes in-process, so the harness artifact and any
	// callback see identical records.
	Events *obs.EventSink
	// Obs, when set, supplies the registry the runner's counters live in
	// (exposed by /metrics alongside the intake's) and the tracer its
	// shard/dispatch spans record to. Nil keeps a private registry so
	// Metrics() works standalone.
	Obs *obs.Observer

	initOnce sync.Once
	states   []*workerState

	dispatched     *obs.Counter
	retries        *obs.Counter
	steals         *obs.Counter
	stolenWins     *obs.Counter
	workerFailures *obs.Counter
	malformed      *obs.Counter
	refused        *obs.Counter
	probeFailures  *obs.Counter
	dispatchMS     *obs.Histogram
}

// NewRemoteRunner builds a RemoteRunner over the given worker pool with
// default transport and failure handling.
func NewRemoteRunner(workers []string, scenario string, opts replay.Options) *RemoteRunner {
	return &RemoteRunner{Workers: workers, Scenario: scenario, Opts: opts}
}

func (r *RemoteRunner) init() {
	r.initOnce.Do(func() {
		for _, w := range r.Workers {
			r.states = append(r.states, &workerState{url: WorkerURL(w)})
		}
		reg := r.Obs.Registry()
		if reg == nil {
			reg = obs.NewRegistry()
		}
		r.dispatched = reg.Counter("pathlog_fleet_dispatched_total")
		r.retries = reg.Counter("pathlog_fleet_retries_total")
		r.steals = reg.Counter("pathlog_fleet_steals_total")
		r.stolenWins = reg.Counter("pathlog_fleet_stolen_wins_total")
		r.workerFailures = reg.Counter("pathlog_fleet_worker_failures_total")
		r.malformed = reg.Counter("pathlog_fleet_malformed_total")
		r.refused = reg.Counter("pathlog_fleet_refused_total")
		r.probeFailures = reg.Counter("pathlog_fleet_probe_failures_total")
		r.dispatchMS = reg.Histogram("pathlog_fleet_dispatch_ms", obs.ExpBuckets(1, 2, 14))
	})
}

func (r *RemoteRunner) transport() Transport {
	if r.Transport != nil {
		return r.Transport
	}
	return &HTTPTransport{}
}

func (r *RemoteRunner) maxAttempts() int {
	if r.MaxAttempts > 0 {
		return r.MaxAttempts
	}
	return DefaultMaxAttempts
}

// event stamps e with the active span's identity (when ctx carries one),
// journals it to the Events sink, and hands it to OnEvent.
func (r *RemoteRunner) event(ctx context.Context, e Event) {
	if s := obs.SpanFromContext(ctx); s != nil {
		sc := s.Context()
		e.Trace, e.Span = sc.TraceID, sc.SpanID
	}
	r.Events.Emit(e)
	if r.OnEvent != nil {
		r.OnEvent(e)
	}
}

// Metrics snapshots the runner's counters.
func (r *RemoteRunner) Metrics() Metrics {
	r.init()
	return Metrics{
		Dispatched:     r.dispatched.Value(),
		Retries:        r.retries.Value(),
		Steals:         r.steals.Value(),
		StolenWins:     r.stolenWins.Value(),
		WorkerFailures: r.workerFailures.Value(),
		Malformed:      r.malformed.Value(),
		Refused:        r.refused.Value(),
		ProbeFailures:  r.probeFailures.Value(),
	}
}

// WorkerStatuses snapshots per-worker health, in pool order.
func (r *RemoteRunner) WorkerStatuses() []WorkerStatus {
	r.init()
	out := make([]WorkerStatus, len(r.states))
	for i, ws := range r.states {
		inflight, ewma := ws.load()
		out[i] = WorkerStatus{
			URL:        ws.url,
			Up:         ws.isUp(),
			EWMAMillis: ewma,
			Inflight:   inflight,
			Dispatches: ws.dispatches.Load(),
			Failures:   ws.failures.Load(),
		}
	}
	return out
}

// WaitHealthy polls every worker's /healthz until all answer or the
// context expires — the deadline-bounded way to await a fleet coming up
// (tests and the harness use this instead of sleeping).
func (r *RemoteRunner) WaitHealthy(ctx context.Context) error {
	r.init()
	if len(r.states) == 0 {
		return fmt.Errorf("fleet: no workers configured")
	}
	tr := r.transport()
	for {
		var lastErr error
		healthy := 0
		for _, ws := range r.states {
			pctx, cancel := context.WithTimeout(ctx, r.probeTimeout())
			err := tr.Healthz(pctx, ws.url)
			cancel()
			if err != nil {
				lastErr = fmt.Errorf("fleet: worker %s: %w", ws.url, err)
				continue
			}
			ws.markUp()
			healthy++
		}
		if healthy == len(r.states) {
			return nil
		}
		select {
		case <-ctx.Done():
			if lastErr != nil {
				return fmt.Errorf("%w (last probe: %v)", ctx.Err(), lastErr)
			}
			return ctx.Err()
		case <-time.After(25 * time.Millisecond):
		}
	}
}

func (r *RemoteRunner) probeTimeout() time.Duration {
	if r.ProbeTimeout > 0 {
		return r.ProbeTimeout
	}
	return DefaultProbeTimeout
}

// pickWorker chooses the healthy worker with the least load (inflight
// count, then EWMA latency), excluding one worker if an alternative
// exists — the steal path must land on a different host than the primary.
func (r *RemoteRunner) pickWorker(exclude *workerState) *workerState {
	var best *workerState
	bestInflight := 0
	bestEWMA := math.MaxFloat64
	for _, ws := range r.states {
		if ws == exclude || !ws.isUp() {
			continue
		}
		inflight, ewma := ws.load()
		if best == nil || inflight < bestInflight || (inflight == bestInflight && ewma < bestEWMA) {
			best, bestInflight, bestEWMA = ws, inflight, ewma
		}
	}
	if best == nil && exclude != nil && exclude.isUp() {
		return exclude
	}
	return best
}

// anyUp reports whether at least one worker is believed healthy.
func (r *RemoteRunner) anyUp() bool {
	for _, ws := range r.states {
		if ws.isUp() {
			return true
		}
	}
	return false
}

// probeAll probes every down worker once and revives the responders.
func (r *RemoteRunner) probeAll(ctx context.Context) {
	tr := r.transport()
	for _, ws := range r.states {
		if ws.isUp() {
			continue
		}
		pctx, cancel := context.WithTimeout(ctx, r.probeTimeout())
		err := tr.Healthz(pctx, ws.url)
		cancel()
		if err != nil {
			r.probeFailures.Inc()
			r.event(ctx, Event{Kind: "probe_failed", Worker: ws.url, Err: err.Error()})
			continue
		}
		ws.markUp()
		r.event(ctx, Event{Kind: "worker_up", Worker: ws.url})
	}
}

// stealDelay computes the duplicate-dispatch deadline for a shard running
// on the given worker: max(StealAfter, StealFactor×EWMA). Zero means no
// stealing this wave (no floor configured and no latency history yet).
func (r *RemoteRunner) stealDelay(ws *workerState) time.Duration {
	factor := r.StealFactor
	if factor <= 0 {
		factor = DefaultStealFactor
	}
	_, ewma := ws.load()
	d := time.Duration(factor * ewma * float64(time.Millisecond))
	if r.StealAfter > d {
		d = r.StealAfter
	}
	return d
}

// encodeRequest stages the shard as one wire request with the recording
// envelopes inline.
func (r *RemoteRunner) encodeRequest(shardID string, reports []*corpus.Report) ([]byte, error) {
	req := corpus.ShardRequest{
		Version:  corpus.ProtocolVersion,
		Scenario: r.Scenario,
		ShardID:  shardID,
		MaxRuns:  r.Opts.MaxRuns,
		BudgetMS: r.Opts.TimeBudget.Milliseconds(),
		Workers:  r.Opts.Workers,
		PickFIFO: r.Opts.PickFIFO,
	}
	for _, rep := range reports {
		if rep.Rec == nil || rep.Rec.Plan == nil {
			return nil, fmt.Errorf("fleet: report %s carries no plan — resolve the corpus against a plan store before replaying", rep.Signature)
		}
		data, err := rep.Rec.Encode()
		if err != nil {
			return nil, fmt.Errorf("fleet: stage report %s for shard %s: %w", rep.Signature, shardID, err)
		}
		req.Envelopes = append(req.Envelopes, json.RawMessage(data))
	}
	return json.Marshal(req)
}

// ReplayShard implements corpus.Runner: dispatch the shard to the
// least-loaded healthy worker, duplicate it onto a second worker if the
// first is slow (first valid response wins, the loser's request context is
// cancelled), and requeue with capped exponential backoff when a wave
// fails. When every worker looks dead the pool is re-probed before giving
// up, so a single flaky dispatch cannot strand a shard while live workers
// exist.
func (r *RemoteRunner) ReplayShard(ctx context.Context, reports []*corpus.Report) ([]corpus.ReportRun, error) {
	r.init()
	if len(r.states) == 0 {
		return nil, fmt.Errorf("fleet: no workers configured")
	}
	shardID := corpus.ShardIDFor(reports)
	ctx, span := r.Obs.Tracer().StartSpan(ctx, "fleet.shard")
	span.SetAttr("shard", shardID)
	defer span.End()
	body, err := r.encodeRequest(shardID, reports)
	if err != nil {
		span.SetAttr("outcome", "encode-error")
		return nil, err
	}
	maxAttempts := r.maxAttempts()
	backoff := r.BackoffBase
	if backoff <= 0 {
		backoff = DefaultBackoffBase
	}
	maxBackoff := r.BackoffCap
	if maxBackoff <= 0 {
		maxBackoff = DefaultBackoffCap
	}
	var lastErr error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		if attempt > 1 {
			r.retries.Inc()
			r.event(ctx, Event{Kind: "retry", Shard: shardID, Attempt: attempt, Err: errString(lastErr)})
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(backoff):
			}
			backoff = min(backoff*2, maxBackoff)
		}
		if !r.anyUp() {
			r.probeAll(ctx)
			if !r.anyUp() {
				if lastErr == nil {
					lastErr = fmt.Errorf("no worker answered a health probe")
				}
				return nil, fmt.Errorf("fleet: shard %s: all %d workers down after %d attempts: %w",
					shardID, len(r.states), attempt, lastErr)
			}
		}
		results, err := r.dispatchWave(ctx, shardID, body, len(reports), attempt)
		if err == nil {
			span.SetAttr("attempts", fmt.Sprint(attempt))
			return results, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		lastErr = err
	}
	return nil, fmt.Errorf("fleet: shard %s: gave up after %d attempts: %w", shardID, maxAttempts, lastErr)
}

// waveOutcome is one dispatch's result inside a wave.
type waveOutcome struct {
	results []corpus.ReportRun
	err     error
	stolen  bool
}

// dispatchWave runs one wave: a primary dispatch, plus a stolen duplicate
// on a second worker if the primary outlives the steal deadline. The first
// valid response wins and cancels the other request.
func (r *RemoteRunner) dispatchWave(ctx context.Context, shardID string, body []byte, nReports, attempt int) ([]corpus.ReportRun, error) {
	primary := r.pickWorker(nil)
	if primary == nil {
		return nil, fmt.Errorf("no healthy workers")
	}
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan waveOutcome, 2)
	launch := func(ws *workerState, stolen bool) {
		go func() {
			res, err := r.dispatchOnce(wctx, ws, shardID, body, nReports, attempt)
			ch <- waveOutcome{results: res, err: err, stolen: stolen}
		}()
	}
	launch(primary, false)
	inflight := 1
	var stealC <-chan time.Time
	if d := r.stealDelay(primary); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		stealC = t.C
	}
	var lastErr error
	for inflight > 0 {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-stealC:
			stealC = nil
			if thief := r.pickWorker(primary); thief != nil && thief != primary {
				r.steals.Inc()
				r.event(ctx, Event{Kind: "steal", Worker: thief.url, Shard: shardID, Attempt: attempt})
				launch(thief, true)
				inflight++
			}
		case out := <-ch:
			inflight--
			if out.err == nil {
				if out.stolen {
					r.stolenWins.Inc()
					r.event(ctx, Event{Kind: "steal_win", Shard: shardID, Attempt: attempt})
				}
				// The loser's dispatch dies with wctx; its outcome lands in
				// the buffered channel and is dropped with the wave.
				return out.results, nil
			}
			lastErr = out.err
		}
	}
	return nil, lastErr
}

// dispatchOnce POSTs the shard to one worker and validates the response.
// Transport failures mark the worker down (a later probe revives it);
// malformed or refusing responses fail the dispatch without poisoning
// other shards on the same worker. A dispatch cancelled because the wave
// already has a winner reports the cancellation without any failure
// accounting.
func (r *RemoteRunner) dispatchOnce(ctx context.Context, ws *workerState, shardID string, body []byte, nReports, attempt int) ([]corpus.ReportRun, error) {
	ctx, span := r.Obs.Tracer().StartSpan(ctx, "fleet.dispatch")
	span.SetAttr("worker", ws.url)
	span.SetAttr("shard", shardID)
	defer span.End()
	r.dispatched.Inc()
	r.event(ctx, Event{Kind: "dispatch", Worker: ws.url, Shard: shardID, Attempt: attempt})
	dctx := ctx
	if r.RequestTimeout > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(ctx, r.RequestTimeout)
		defer cancel()
	}
	ws.begin()
	start := time.Now()
	data, err := r.transport().PostShard(dctx, ws.url, body)
	elapsed := time.Since(start)
	ws.end(elapsed, err == nil)
	r.dispatchMS.Observe(float64(elapsed.Milliseconds()))
	if err != nil {
		if ctx.Err() != nil {
			// Lost the race (or the caller gave up): not the worker's fault.
			span.SetAttr("outcome", "cancelled")
			return nil, ctx.Err()
		}
		r.workerFailures.Inc()
		ws.markDown()
		span.SetAttr("outcome", "worker-down")
		r.event(ctx, Event{Kind: "worker_down", Worker: ws.url, Shard: shardID, Attempt: attempt, Err: err.Error(), MS: float64(elapsed.Milliseconds())})
		return nil, fmt.Errorf("worker %s: %w", ws.url, err)
	}
	var resp corpus.ShardResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		r.malformed.Inc()
		span.SetAttr("outcome", "malformed")
		r.event(ctx, Event{Kind: "failure", Worker: ws.url, Shard: shardID, Attempt: attempt, Err: "malformed response: " + err.Error()})
		return nil, fmt.Errorf("worker %s wrote a malformed response (%d bytes): %w", ws.url, len(data), err)
	}
	if resp.Error != "" {
		r.refused.Inc()
		span.SetAttr("outcome", "refused")
		r.event(ctx, Event{Kind: "failure", Worker: ws.url, Shard: shardID, Attempt: attempt, Err: "refused: " + resp.Error})
		return nil, fmt.Errorf("worker %s refused shard: %s", ws.url, resp.Error)
	}
	if resp.Version != corpus.ProtocolVersion {
		r.refused.Inc()
		span.SetAttr("outcome", "refused")
		return nil, fmt.Errorf("worker %s speaks protocol %d, want %d", ws.url, resp.Version, corpus.ProtocolVersion)
	}
	if resp.ShardID != "" && resp.ShardID != shardID {
		r.refused.Inc()
		span.SetAttr("outcome", "refused")
		return nil, fmt.Errorf("worker %s echoed shard %s, want %s — response belongs to a different shard", ws.url, resp.ShardID, shardID)
	}
	if len(resp.Results) != nReports {
		r.malformed.Inc()
		span.SetAttr("outcome", "malformed")
		return nil, fmt.Errorf("worker %s returned %d results for %d reports", ws.url, len(resp.Results), nReports)
	}
	span.SetAttr("outcome", "ok")
	r.event(ctx, Event{Kind: "response", Worker: ws.url, Shard: shardID, Attempt: attempt, MS: float64(elapsed.Milliseconds())})
	return resp.Results, nil
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
