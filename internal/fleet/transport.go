package fleet

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"

	"pathlog/internal/obs"
)

// Transport is how a RemoteRunner reaches one worker — the seam
// fault-injection tests replace with a double that serves timeouts, torn
// JSON bodies, 5xx statuses and hung connections per request. PostShard
// returns the raw response body: decoding stays in the runner, so a torn
// body is diagnosed (and counted) in exactly one place regardless of
// transport.
type Transport interface {
	// PostShard POSTs an encoded ShardRequest to the worker's /shard
	// endpoint and returns the raw response body.
	PostShard(ctx context.Context, worker string, body []byte) ([]byte, error)
	// Healthz probes the worker's /healthz endpoint; nil means the worker
	// answered and is accepting shards.
	Healthz(ctx context.Context, worker string) error
}

// StatusError is a non-2xx reply from a worker daemon: the status code plus
// a bounded tail of the body, so a refusal's reason survives into the
// transcript without buffering an arbitrary error page.
type StatusError struct {
	Worker string
	Code   int
	Body   string
}

// Error implements error.
func (e *StatusError) Error() string {
	if e.Body == "" {
		return fmt.Sprintf("worker %s returned HTTP %d", e.Worker, e.Code)
	}
	return fmt.Sprintf("worker %s returned HTTP %d: %s", e.Worker, e.Code, e.Body)
}

// WorkerURL normalizes a worker address to a base URL: "host:port" gains
// the http scheme, trailing slashes are dropped, and an explicit http(s)
// URL passes through.
func WorkerURL(worker string) string {
	w := strings.TrimRight(worker, "/")
	if strings.HasPrefix(w, "http://") || strings.HasPrefix(w, "https://") {
		return w
	}
	return "http://" + w
}

// HTTPTransport is the production Transport: plain HTTP POSTs to
// shardworkerd daemons, with the response body size capped so a misbehaving
// worker cannot balloon the parent's memory.
type HTTPTransport struct {
	// Client overrides the HTTP client (nil = http.DefaultClient). Request
	// deadlines come from the caller's context, not the client.
	Client *http.Client
	// MaxResponseBytes caps a worker's response body
	// (0 = corpus.DefaultMaxResponseBytes).
	MaxResponseBytes int64
}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

func (t *HTTPTransport) maxBytes() int64 {
	if t.MaxResponseBytes > 0 {
		return t.MaxResponseBytes
	}
	return 64 << 20
}

// PostShard implements Transport.
func (t *HTTPTransport) PostShard(ctx context.Context, worker string, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, WorkerURL(worker)+"/shard", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	obs.Inject(ctx, req.Header)
	res, err := t.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	max := t.maxBytes()
	data, err := io.ReadAll(io.LimitReader(res.Body, max+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > max {
		return nil, fmt.Errorf("worker %s response exceeds %d bytes — refusing oversized response", worker, max)
	}
	if res.StatusCode < 200 || res.StatusCode > 299 {
		return nil, &StatusError{Worker: worker, Code: res.StatusCode, Body: bodyTail(data)}
	}
	return data, nil
}

// Healthz implements Transport.
func (t *HTTPTransport) Healthz(ctx context.Context, worker string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, WorkerURL(worker)+"/healthz", nil)
	if err != nil {
		return err
	}
	res, err := t.client().Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(res.Body, 4096))
	if res.StatusCode < 200 || res.StatusCode > 299 {
		return &StatusError{Worker: worker, Code: res.StatusCode, Body: bodyTail(data)}
	}
	return nil
}

// bodyTail trims a response body for error messages.
func bodyTail(b []byte) string {
	const max = 256
	s := string(bytes.TrimSpace(b))
	if len(s) > max {
		s = "..." + s[len(s)-max:]
	}
	return s
}
