package fleet_test

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"pathlog"
	"pathlog/internal/apps"
	"pathlog/internal/concolic"
	"pathlog/internal/core"
	"pathlog/internal/corpus"
	"pathlog/internal/fleet"
	"pathlog/internal/instrument"
	"pathlog/internal/lang"
	"pathlog/internal/replay"
	"pathlog/internal/static"
)

// repoRoot locates the module root from this file's path, for go build.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// buildWorkerd compiles cmd/shardworkerd into a temp dir.
func buildWorkerd(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain unavailable: %v", err)
	}
	bin := filepath.Join(t.TempDir(), "shardworkerd")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/shardworkerd")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build shardworkerd: %v\n%s", err, out)
	}
	return bin
}

// workerd is one running shard worker daemon.
type workerd struct {
	url string
	cmd *exec.Cmd
}

// startWorkerd launches a daemon on a free port and scrapes the
// "listening on http://..." line for the picked address, bounded by ctx.
func startWorkerd(t *testing.T, ctx context.Context, bin string, args ...string) *workerd {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-listen", "127.0.0.1:0"}, args...)...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start shardworkerd: %v", err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		if sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
		io.Copy(io.Discard, stdout)
	}()
	select {
	case line, ok := <-lines:
		if !ok {
			t.Fatal("shardworkerd exited before printing its address")
		}
		url := strings.TrimPrefix(strings.TrimSpace(line), "listening on ")
		if !strings.HasPrefix(url, "http://") {
			t.Fatalf("unexpected startup line %q", line)
		}
		return &workerd{url: url, cmd: cmd}
	case <-ctx.Done():
		t.Fatalf("shardworkerd printed no address: %v", ctx.Err())
	}
	return nil
}

// waitFleet polls every daemon's /healthz until the whole pool answers.
func waitFleet(t *testing.T, ctx context.Context, urls []string) {
	t.Helper()
	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	r := fleet.NewRemoteRunner(urls, "", replay.Options{})
	if err := r.WaitHealthy(wctx); err != nil {
		t.Fatalf("fleet never became healthy: %v", err)
	}
}

// fleetCorpus builds the three-member uServer corpus of the in-process
// parity test (experiments 1, 2 and 4 recorded under one low-coverage
// dynamic plan of userver-exp3), with each member carrying its user input
// so CorpusBalance can re-record it.
func fleetCorpus(t *testing.T) (*corpus.Corpus, *core.Scenario) {
	t.Helper()
	ctx := context.Background()
	s3, err := apps.UServerScenario(3, 72)
	if err != nil {
		t.Fatal(err)
	}
	an := apps.UServerAnalysisScenario()
	dyn := an.AnalyzeDynamicContext(ctx, concolic.Options{MaxRuns: 6})
	st := s3.AnalyzeStatic(static.Options{LibAsSymbolic: true})
	plan := instrument.BuildPlan(s3.Prog, instrument.MethodDynamic,
		instrument.Inputs{Dynamic: dyn, Static: st}, true)

	base := time.Unix(1_700_000_000, 0)
	var members []corpus.Member
	for i, exp := range []int{1, 2, 4} {
		se, err := apps.UServerScenario(exp, 72)
		if err != nil {
			t.Fatal(err)
		}
		scn := &core.Scenario{Name: s3.Name, Prog: s3.Prog, Spec: s3.Spec, UserBytes: se.UserBytes}
		rec, _, err := scn.RecordContext(ctx, plan)
		if err != nil {
			t.Fatal(err)
		}
		if rec == nil {
			t.Fatalf("exp%d did not crash", exp)
		}
		members = append(members, corpus.Member{
			Rec:       rec,
			ModTime:   base.Add(time.Duration(i) * time.Hour),
			UserBytes: se.UserBytes,
		})
	}
	c, err := corpus.Build(members, corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Reports) != 3 {
		t.Fatalf("parity corpus has %d members, want 3 distinct", len(c.Reports))
	}
	return c, s3
}

// normalize strips wall-clock fields so profiles compare across runners
// and process boundaries.
func normalize(p *instrument.SearchProfile) *instrument.SearchProfile {
	out := *p
	out.Branches = make(map[lang.BranchID]*instrument.BranchCost, len(p.Branches))
	for id, bc := range p.Branches {
		c := *bc
		c.SolverTime = 0
		out.Branches[id] = &c
	}
	return &out
}

// replayBounds are the replay options every parity leg shares; the remote
// runner ships them in the shard request, so workers search under the
// exact same budget the in-process runner does.
var replayBounds = replay.Options{MaxRuns: 1500, TimeBudget: 15 * time.Second, Workers: 1}

// TestRemoteShardParity is the remote-replay correctness gate: the merged
// weighted profile must be byte-identical whether the corpus replays
// in-process or over HTTP against real shardworkerd daemons — 1 worker or
// 4 — and whether the pool is wired per-call (RemoteRunner) or per-session
// (WithFleet). Run under -race in CI.
func TestRemoteShardParity(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a worker daemon and replays a corpus over HTTP")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	c, s3 := fleetCorpus(t)
	bin := buildWorkerd(t)
	var urls []string
	for i := 0; i < 4; i++ {
		urls = append(urls, startWorkerd(t, ctx, bin).url)
	}
	waitFleet(t, ctx, urls)

	remote := func(workers []string) *fleet.RemoteRunner {
		return fleet.NewRemoteRunner(workers, s3.Name, replayBounds)
	}
	configs := []struct {
		name   string
		shards int
		runner corpus.Runner
	}{
		{"inproc-1", 1, &corpus.InProcessRunner{Prog: s3.Prog, Spec: s3.Spec, Opts: replayBounds}},
		{"remote-1", 1, remote(urls[:1])},
		{"remote-4", 4, remote(urls)},
	}
	var ref *instrument.SearchProfile
	var refOut *corpus.Outcome
	for _, cfg := range configs {
		out, err := corpus.Replay(ctx, c, cfg.shards, cfg.runner)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		if out.Reproduced != out.Members {
			t.Fatalf("%s: %d/%d reproduced — fixture must be all-quick replays",
				cfg.name, out.Reproduced, out.Members)
		}
		got := normalize(out.Profile)
		if ref == nil {
			ref, refOut = got, out
			continue
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("%s: merged profile diverges from %s:\n got %+v\n ref %+v",
				cfg.name, configs[0].name, got, ref)
		}
		if out.MeanRuns != refOut.MeanRuns || out.MaxRuns != refOut.MaxRuns {
			t.Errorf("%s: population stats diverge: mean %g max %d vs mean %g max %d",
				cfg.name, out.MeanRuns, out.MaxRuns, refOut.MeanRuns, refOut.MaxRuns)
		}
	}

	// Session plumbing: WithFleet must produce the same outcome through
	// ReplayCorpus (one shard per worker by default) as a fleetless session.
	sessFleet := pathlog.SessionOf(s3,
		pathlog.WithReplayBudget(replayBounds.MaxRuns, replayBounds.TimeBudget),
		pathlog.WithReplayWorkers(1),
		pathlog.WithFleet(urls[:3]...))
	outFleet, err := sessFleet.ReplayCorpus(ctx, c, pathlog.CorpusOptions{})
	if err != nil {
		t.Fatalf("session fleet replay: %v", err)
	}
	if got := normalize(outFleet.Profile); !reflect.DeepEqual(got, ref) {
		t.Errorf("WithFleet session replay diverges from in-process:\n got %+v\n ref %+v", got, ref)
	}
	if outFleet.MeanRuns != refOut.MeanRuns || outFleet.MaxRuns != refOut.MaxRuns {
		t.Errorf("WithFleet population stats diverge: mean %g max %d vs mean %g max %d",
			outFleet.MeanRuns, outFleet.MaxRuns, refOut.MeanRuns, refOut.MaxRuns)
	}
}

// healthzInflight reads one daemon's /healthz inflight counter.
func healthzInflight(cl *http.Client, url string) (int, error) {
	resp, err := cl.Get(url + "/healthz")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var h struct {
		Inflight int `json:"inflight"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return 0, err
	}
	return h.Inflight, nil
}

// balanceSession builds a CorpusBalance session over userver-exp3 with a
// cheap, deterministic analysis budget — control and chaos sessions must
// be configured identically so their trajectories can only diverge if
// distribution changes results.
func balanceSession(t *testing.T, s3 *core.Scenario) *pathlog.Session {
	t.Helper()
	return pathlog.SessionOf(s3,
		pathlog.WithSyscallLog(),
		pathlog.WithAnalysisSpec(apps.UServerAnalysisScenario().Spec),
		pathlog.WithDynamicBudget(6, 0),
		pathlog.WithStaticOptions(static.Options{LibAsSymbolic: true}),
		pathlog.WithReplayBudget(replayBounds.MaxRuns, replayBounds.TimeBudget),
		pathlog.WithReplayWorkers(1))
}

// TestChaosWorkerDeathConverges is the chaos gate: SIGKILL one of three
// real worker daemons while it holds a shard mid-flight, and CorpusBalance
// over the surviving fleet must still converge to the exact trajectory an
// in-process control run produces — same plans, same normalized profiles —
// with the runner's retry, steal and worker-failure counters all nonzero.
// The daemons hold each shard (-delay) long enough that the kill window
// and the steal deadline are wide; the killer polls /healthz for a busy
// worker instead of sleeping.
func TestChaosWorkerDeathConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a corpus balance loop twice against real worker daemons")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	c, s3 := fleetCorpus(t)
	bin := buildWorkerd(t)

	// Control: the same loop, fully in-process.
	ctrl, err := balanceSession(t, s3).CorpusBalance(ctx, c, pathlog.BalanceOptions{Shards: 3})
	if err != nil {
		t.Fatalf("control balance: %v", err)
	}
	if !ctrl.Converged {
		t.Fatalf("control balance did not converge: %s", ctrl.Reason)
	}

	// Chaos fleet: three daemons holding every shard 750ms — a wide window
	// in which the victim is observably busy (inflight >= 1) before the
	// 400ms steal deadline duplicates anything.
	daemons := make([]*workerd, 3)
	urls := make([]string, 3)
	for i := range daemons {
		daemons[i] = startWorkerd(t, ctx, bin, "-delay", "750ms")
		urls[i] = daemons[i].url
	}
	waitFleet(t, ctx, urls)

	runner := fleet.NewRemoteRunner(urls, s3.Name, replayBounds)
	runner.StealAfter = 400 * time.Millisecond

	// The killer: poll every daemon's /healthz until one reports a shard
	// inflight, then SIGKILL that daemon mid-shard.
	killCtx, stopKiller := context.WithCancel(ctx)
	defer stopKiller()
	killed := make(chan string, 1)
	go func() {
		defer close(killed)
		cl := &http.Client{Timeout: time.Second}
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-killCtx.Done():
				return
			case <-tick.C:
			}
			for _, wd := range daemons {
				if n, err := healthzInflight(cl, wd.url); err == nil && n >= 1 {
					wd.cmd.Process.Kill()
					killed <- wd.url
					return
				}
			}
		}
	}()

	chaos, err := balanceSession(t, s3).CorpusBalance(ctx, c, pathlog.BalanceOptions{
		Shards: 3,
		Runner: runner,
	})
	if err != nil {
		t.Fatalf("chaos balance: %v", err)
	}
	stopKiller()
	victim, ok := <-killed
	if !ok || victim == "" {
		t.Fatal("no worker was ever observed busy — the chaos kill never happened")
	}
	t.Logf("killed %s mid-shard", victim)

	if !chaos.Converged {
		t.Fatalf("chaos balance did not converge: %s", chaos.Reason)
	}
	if len(chaos.Points) != len(ctrl.Points) {
		t.Fatalf("trajectories diverge: chaos %d points (%s), control %d points (%s)",
			len(chaos.Points), chaos.Reason, len(ctrl.Points), ctrl.Reason)
	}
	for i := range ctrl.Points {
		a, b := ctrl.Points[i], chaos.Points[i]
		if a.Plan.Fingerprint() != b.Plan.Fingerprint() {
			t.Errorf("generation %d deployed different plans: control %s, chaos %s",
				i, a.Plan.Fingerprint(), b.Plan.Fingerprint())
		}
		if a.Reproduced != b.Reproduced || a.MeanReplayRuns != b.MeanReplayRuns {
			t.Errorf("generation %d measurements diverge: control %d reproduced %.1f runs, chaos %d reproduced %.1f runs",
				i, a.Reproduced, a.MeanReplayRuns, b.Reproduced, b.MeanReplayRuns)
		}
		if !reflect.DeepEqual(normalize(a.Outcome.Profile), normalize(b.Outcome.Profile)) {
			t.Errorf("generation %d merged profile diverges under chaos:\n got %+v\nwant %+v",
				i, normalize(b.Outcome.Profile), normalize(a.Outcome.Profile))
		}
	}

	m := runner.Metrics()
	if m.WorkerFailures == 0 {
		t.Error("worker was killed mid-shard but WorkerFailures is 0")
	}
	if m.Retries == 0 {
		t.Error("killed shard completed without a retry — Retries is 0")
	}
	if m.Steals == 0 {
		t.Error("750ms shard holds never outlived the 400ms steal deadline — Steals is 0")
	}
	for _, st := range runner.WorkerStatuses() {
		if st.URL == fleet.WorkerURL(victim) && st.Up {
			t.Errorf("killed worker %s still marked up", victim)
		}
	}
}
