package fleet

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pathlog/internal/apps"
	"pathlog/internal/core"
	"pathlog/internal/corpus"
	"pathlog/internal/instrument"
	"pathlog/internal/obs"
	"pathlog/internal/replay"
	"pathlog/internal/world"
)

// WorkerCore executes shard requests against named scenarios — the engine
// shared by cmd/shardworker (one request over stdin/stdout) and
// cmd/shardworkerd (many requests over HTTP). It caches scenario builds by
// name so a daemon does not rebuild the program and input space per shard;
// the replay engines themselves share nothing and may run concurrently.
type WorkerCore struct {
	// Obs, when set, supplies the registry the worker's shard counters and
	// execution histogram live in (cmd/shardworkerd exposes it on /metrics)
	// and the tracer its worker.shard spans record to. Nil keeps a private
	// registry.
	Obs *obs.Observer

	mu        sync.Mutex
	scenarios map[string]*core.Scenario

	initOnce sync.Once
	cShards  *obs.Counter
	cErrors  *obs.Counter
	hShardMS *obs.Histogram
}

// Register creates the worker's counters and histogram in the observer's
// registry. Execute calls it lazily; daemons call it at startup so a fresh
// worker's /metrics page shows the metric families before the first shard
// ever lands.
func (w *WorkerCore) Register() {
	w.initOnce.Do(func() {
		reg := w.Obs.Registry()
		if reg == nil {
			reg = obs.NewRegistry()
		}
		w.cShards = reg.Counter("pathlog_worker_shards_total")
		w.cErrors = reg.Counter("pathlog_worker_shard_errors_total")
		w.hShardMS = reg.Histogram("pathlog_worker_shard_ms", obs.ExpBuckets(1, 2, 14))
	})
}

// scenario resolves and caches one named scenario.
func (w *WorkerCore) scenario(name string) (*core.Scenario, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if s, ok := w.scenarios[name]; ok {
		return s, nil
	}
	s, err := apps.ScenarioByName(name)
	if err != nil {
		return nil, err
	}
	if w.scenarios == nil {
		w.scenarios = make(map[string]*core.Scenario)
	}
	w.scenarios[name] = s
	return s, nil
}

// Execute runs one shard request to completion: resolve the scenario,
// replay each report in order, return one run per report. Every failure
// becomes a response-level Error (never a panic or a half-filled result
// list), so the parent's transcript names what went wrong on which report.
// Reports arrive either as envelope file paths or as inline version-2
// envelope bodies — never both in one request.
func (w *WorkerCore) Execute(ctx context.Context, req corpus.ShardRequest) corpus.ShardResponse {
	w.Register()
	w.cShards.Inc()
	start := time.Now()
	ctx, span := w.Obs.Tracer().StartSpan(ctx, "worker.shard")
	span.SetAttr("shard", req.ShardID)
	defer func() {
		w.hShardMS.Observe(float64(time.Since(start).Milliseconds()))
		span.End()
	}()
	fail := func(format string, args ...any) corpus.ShardResponse {
		w.cErrors.Inc()
		span.SetAttr("outcome", "error")
		return corpus.ShardResponse{
			Version: corpus.ProtocolVersion,
			ShardID: req.ShardID,
			Error:   fmt.Sprintf(format, args...),
		}
	}
	if req.Version != corpus.ProtocolVersion {
		return fail("request speaks protocol %d, this worker speaks %d", req.Version, corpus.ProtocolVersion)
	}
	if len(req.Reports) == 0 && len(req.Envelopes) == 0 {
		return fail("request names no reports")
	}
	if len(req.Reports) > 0 && len(req.Envelopes) > 0 {
		return fail("request mixes %d report paths with %d inline envelopes — a request ships exactly one form",
			len(req.Reports), len(req.Envelopes))
	}
	s, err := w.scenario(req.Scenario)
	if err != nil {
		return fail("%v", err)
	}
	opts := replay.Options{
		MaxRuns:    req.MaxRuns,
		TimeBudget: time.Duration(req.BudgetMS) * time.Millisecond,
		Workers:    req.Workers,
		PickFIFO:   req.PickFIFO,
	}
	resp := corpus.ShardResponse{
		Version:  corpus.ProtocolVersion,
		ShardID:  req.ShardID,
		ProgHash: instrument.ProgramHash(s.Prog),
	}
	total := len(req.Reports) + len(req.Envelopes)
	for i := 0; i < total; i++ {
		// The envelope must embed its plan and fit this worker's program —
		// a wrong-scenario request fails per report, by name.
		var (
			rec  *replay.Recording
			name string
		)
		if len(req.Reports) > 0 {
			name = req.Reports[i]
			rec, err = replay.LoadRecordingFor(name, s.Prog)
		} else {
			name = fmt.Sprintf("inline envelope %d", i)
			rec, err = replay.DecodeRecordingFor(req.Envelopes[i], s.Prog)
		}
		if err != nil {
			return fail("report %s: %v", name, err)
		}
		if rec.Plan == nil {
			return fail("report %s: stamped-only envelope carries no plan — the parent resolves stamps before dispatch", name)
		}
		eng := replay.New(s.Prog, s.Spec, world.NewRegistry(), rec, opts)
		res := eng.Reproduce(ctx)
		resp.Results = append(resp.Results, corpus.ReportRun{
			Reproduced: res.Reproduced,
			TimedOut:   res.TimedOut,
			Cancelled:  res.Cancelled,
			Runs:       res.Runs,
			WallMS:     res.Elapsed.Milliseconds(),
			Profile:    res.Profile,
		})
		if err := ctx.Err(); err != nil {
			return fail("cancelled after %d of %d reports: %v", len(resp.Results), total, err)
		}
	}
	span.SetAttr("outcome", "ok")
	span.SetAttr("reports", fmt.Sprint(total))
	return resp
}
