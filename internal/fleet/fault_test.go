package fleet

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"pathlog/internal/corpus"
	"pathlog/internal/instrument"
	"pathlog/internal/lang"
	"pathlog/internal/replay"
	"pathlog/internal/trace"
	"pathlog/internal/vm"
)

const fakeProgHash = "00112233445566778899aabbccddeeff"

// fakeReport builds a report whose recording encodes cleanly (plan
// embedded); the fake transport never replays it.
func fakeReport(sig string, bits byte) *corpus.Report {
	plan := &instrument.Plan{
		Strategy:     "dynamic",
		Instrumented: map[lang.BranchID]bool{1: true, 4: true},
		ProgHash:     fakeProgHash,
	}
	rec := &replay.Recording{
		Plan:        plan,
		Trace:       trace.FromBytes([]byte{bits}, 6),
		Crash:       vm.CrashInfo{Kind: vm.CrashKind(1), Pos: lang.Pos{Unit: "u.mc", Line: 10, Col: 2}, Code: 7},
		Fingerprint: plan.Fingerprint(),
		ProgHash:    fakeProgHash,
	}
	return &corpus.Report{Rec: rec, Signature: sig, Weight: 1}
}

func fakeShard() []*corpus.Report {
	return []*corpus.Report{fakeReport("sig-a", 0b101), fakeReport("sig-b", 0b111)}
}

// behavior scripts one PostShard call.
type behavior func(ctx context.Context, body []byte) ([]byte, error)

// okReply answers like a healthy worker: echo the shard ID, one empty run
// per report.
func okReply(_ context.Context, body []byte) ([]byte, error) {
	var req corpus.ShardRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	resp := corpus.ShardResponse{
		Version: corpus.ProtocolVersion,
		ShardID: req.ShardID,
		Results: make([]corpus.ReportRun, len(req.Reports)+len(req.Envelopes)),
	}
	return json.Marshal(resp)
}

func errReply(err error) behavior {
	return func(context.Context, []byte) ([]byte, error) { return nil, err }
}

func rawReply(s string) behavior {
	return func(context.Context, []byte) ([]byte, error) { return []byte(s), nil }
}

func refuseReply(msg string) behavior {
	return func(_ context.Context, body []byte) ([]byte, error) {
		var req corpus.ShardRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		return json.Marshal(corpus.ShardResponse{
			Version: corpus.ProtocolVersion, ShardID: req.ShardID, Error: msg,
		})
	}
}

// hangReply blocks until the request context is cancelled — a worker that
// accepted the connection and never answers.
func hangReply(ctx context.Context, _ []byte) ([]byte, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// fakeWorker is one worker's script: consume the queue, then repeat
// fallback (nil fallback = healthy okReply).
type fakeWorker struct {
	queue    []behavior
	fallback behavior
}

// fakeTransport is the fault-injection Transport double.
type fakeTransport struct {
	mu      sync.Mutex
	workers map[string]*fakeWorker
	health  map[string]error
}

func (f *fakeTransport) worker(name string, w *fakeWorker) *fakeTransport {
	if f.workers == nil {
		f.workers = make(map[string]*fakeWorker)
	}
	f.workers[WorkerURL(name)] = w
	return f
}

func (f *fakeTransport) sick(name string, err error) *fakeTransport {
	if f.health == nil {
		f.health = make(map[string]error)
	}
	f.health[WorkerURL(name)] = err
	return f
}

func (f *fakeTransport) PostShard(ctx context.Context, worker string, body []byte) ([]byte, error) {
	f.mu.Lock()
	w := f.workers[worker]
	var b behavior
	if w != nil {
		if len(w.queue) > 0 {
			b = w.queue[0]
			w.queue = w.queue[1:]
		} else {
			b = w.fallback
		}
	}
	f.mu.Unlock()
	if b == nil {
		b = okReply
	}
	return b(ctx, body)
}

func (f *fakeTransport) Healthz(_ context.Context, worker string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.health[worker]
}

// testCtx bounds every fault-injection test with an explicit deadline.
func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func newRunner(tr Transport, workers ...string) *RemoteRunner {
	r := NewRemoteRunner(workers, "userver-exp3", replay.Options{})
	r.Transport = tr
	r.BackoffBase = time.Millisecond
	r.BackoffCap = 5 * time.Millisecond
	return r
}

// TestRetryAfterWorkerDeath: a dead primary (connection refused) marks the
// worker down, the shard requeues with backoff, and the second worker
// serves it.
func TestRetryAfterWorkerDeath(t *testing.T) {
	tr := (&fakeTransport{}).worker("w1", &fakeWorker{fallback: errReply(errConnRefused)})
	r := newRunner(tr, "w1", "w2")
	results, err := r.ReplayShard(testCtx(t), fakeShard())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	m := r.Metrics()
	if m.WorkerFailures != 1 || m.Retries != 1 {
		t.Fatalf("WorkerFailures=%d Retries=%d, want 1/1", m.WorkerFailures, m.Retries)
	}
	for _, st := range r.WorkerStatuses() {
		if st.URL == WorkerURL("w1") && st.Up {
			t.Fatal("dead worker still marked up")
		}
	}
}

var errConnRefused = &StatusError{Worker: "w1", Code: 0, Body: "connect: connection refused"}

// TestRetryAfterTornJSON: a torn response body is counted malformed and
// the shard requeues (the worker is not marked down — one bad body does
// not poison its other shards).
func TestRetryAfterTornJSON(t *testing.T) {
	tr := (&fakeTransport{}).worker("w1", &fakeWorker{queue: []behavior{rawReply(`{"version":1,"resu`)}})
	r := newRunner(tr, "w1")
	if _, err := r.ReplayShard(testCtx(t), fakeShard()); err != nil {
		t.Fatal(err)
	}
	m := r.Metrics()
	if m.Malformed != 1 || m.Retries != 1 {
		t.Fatalf("Malformed=%d Retries=%d, want 1/1", m.Malformed, m.Retries)
	}
	if st := r.WorkerStatuses()[0]; !st.Up {
		t.Fatal("malformed response marked the worker down")
	}
}

// TestRetryAfter5xx: a 5xx is a transport failure — worker down, retried.
func TestRetryAfter5xx(t *testing.T) {
	tr := (&fakeTransport{}).worker("w1",
		&fakeWorker{queue: []behavior{errReply(&StatusError{Worker: WorkerURL("w1"), Code: 503, Body: "draining"})}})
	r := newRunner(tr, "w1", "w2")
	if _, err := r.ReplayShard(testCtx(t), fakeShard()); err != nil {
		t.Fatal(err)
	}
	m := r.Metrics()
	if m.WorkerFailures != 1 || m.Retries != 1 {
		t.Fatalf("WorkerFailures=%d Retries=%d, want 1/1", m.WorkerFailures, m.Retries)
	}
}

// TestStealFromHungWorker: a worker that accepts the shard and never
// answers is outrun — the steal timer duplicates the dispatch onto the
// second worker, whose response wins and cancels the hung request.
func TestStealFromHungWorker(t *testing.T) {
	tr := (&fakeTransport{}).worker("w1", &fakeWorker{fallback: hangReply})
	r := newRunner(tr, "w1", "w2")
	r.StealAfter = 20 * time.Millisecond
	results, err := r.ReplayShard(testCtx(t), fakeShard())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	m := r.Metrics()
	if m.Steals != 1 || m.StolenWins != 1 {
		t.Fatalf("Steals=%d StolenWins=%d, want 1/1", m.Steals, m.StolenWins)
	}
	if m.WorkerFailures != 0 {
		t.Fatalf("WorkerFailures=%d — the cancelled loser must not count as a failure", m.WorkerFailures)
	}
}

// TestRefusalIsCountedAndGivesUp: a worker that keeps refusing the shard
// (in-band Error) exhausts the attempt budget; the final error names the
// shard, the attempts and the refusal.
func TestRefusalIsCountedAndGivesUp(t *testing.T) {
	tr := (&fakeTransport{}).worker("w1", &fakeWorker{fallback: refuseReply(`unknown scenario "nope"`)})
	r := newRunner(tr, "w1")
	r.MaxAttempts = 2
	_, err := r.ReplayShard(testCtx(t), fakeShard())
	if err == nil {
		t.Fatal("refusing worker produced no error")
	}
	for _, want := range []string{
		"fleet: shard " + corpus.ShardIDFor(fakeShard()),
		"gave up after 2 attempts",
		`refused shard: unknown scenario "nope"`,
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q\n  missing %q", err, want)
		}
	}
	m := r.Metrics()
	if m.Refused != 2 || m.Retries != 1 {
		t.Fatalf("Refused=%d Retries=%d, want 2/1", m.Refused, m.Retries)
	}
}

// TestResponseValidation pins the refusal paths for responses that decode
// but answer the wrong question: wrong protocol, wrong shard echoed,
// wrong result count.
func TestResponseValidation(t *testing.T) {
	shard := fakeShard()
	shardID := corpus.ShardIDFor(shard)
	cases := []struct {
		name      string
		reply     behavior
		want      string
		malformed int64
		refused   int64
	}{
		{"wrong protocol", rawReply(`{"version":9,"results":[{},{}]}`), "speaks protocol 9, want 1", 0, 1},
		{"wrong shard echoed", rawReply(`{"version":1,"shard_id":"beef","results":[{},{}]}`), "echoed shard beef, want " + shardID, 0, 1},
		{"wrong result count", rawReply(`{"version":1,"results":[{}]}`), "returned 1 results for 2 reports", 1, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := (&fakeTransport{}).worker("w1", &fakeWorker{fallback: tc.reply})
			r := newRunner(tr, "w1")
			r.MaxAttempts = 1
			_, err := r.ReplayShard(testCtx(t), shard)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want substring %q", err, tc.want)
			}
			m := r.Metrics()
			if m.Malformed != tc.malformed || m.Refused != tc.refused {
				t.Fatalf("Malformed=%d Refused=%d, want %d/%d", m.Malformed, m.Refused, tc.malformed, tc.refused)
			}
		})
	}
}

// TestAllWorkersDown: every dispatch and every probe fails — the runner
// gives up naming the pool size and counts the probe failures.
func TestAllWorkersDown(t *testing.T) {
	dead := errReply(&StatusError{Code: 502, Body: "bad gateway"})
	tr := (&fakeTransport{}).
		worker("w1", &fakeWorker{fallback: dead}).
		worker("w2", &fakeWorker{fallback: dead}).
		sick("w1", &StatusError{Code: 502}).
		sick("w2", &StatusError{Code: 502})
	r := newRunner(tr, "w1", "w2")
	_, err := r.ReplayShard(testCtx(t), fakeShard())
	if err == nil {
		t.Fatal("dead pool produced no error")
	}
	if !strings.Contains(err.Error(), "all 2 workers down") {
		t.Fatalf("error %q does not name the dead pool", err)
	}
	m := r.Metrics()
	if m.WorkerFailures < 2 {
		t.Fatalf("WorkerFailures=%d, want >= 2", m.WorkerFailures)
	}
	if m.ProbeFailures < 2 {
		t.Fatalf("ProbeFailures=%d, want >= 2", m.ProbeFailures)
	}
}

// TestProbeRevivesWorker: a worker marked down by a transport blip is
// revived by the health probe and serves the retry — the pool heals
// without operator action.
func TestProbeRevivesWorker(t *testing.T) {
	tr := (&fakeTransport{}).worker("w1",
		&fakeWorker{queue: []behavior{errReply(&StatusError{Code: 500, Body: "hiccup"})}})
	r := newRunner(tr, "w1")
	if _, err := r.ReplayShard(testCtx(t), fakeShard()); err != nil {
		t.Fatal(err)
	}
	m := r.Metrics()
	if m.WorkerFailures != 1 || m.Retries != 1 {
		t.Fatalf("WorkerFailures=%d Retries=%d, want 1/1", m.WorkerFailures, m.Retries)
	}
	if st := r.WorkerStatuses()[0]; !st.Up {
		t.Fatal("revived worker still marked down")
	}
}

// TestWaitHealthyDeadline: WaitHealthy is deadline-bounded and names the
// sick worker instead of sleeping forever.
func TestWaitHealthyDeadline(t *testing.T) {
	tr := (&fakeTransport{}).sick("w1", &StatusError{Code: 503, Body: "starting"})
	r := newRunner(tr, "w1")
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	err := r.WaitHealthy(ctx)
	if err == nil {
		t.Fatal("sick pool reported healthy")
	}
	if !strings.Contains(err.Error(), WorkerURL("w1")) {
		t.Fatalf("error %q does not name the sick worker", err)
	}
}

// TestEventJournal: the OnEvent hook sees the dispatch/failure/retry
// lifecycle (the harness writes these as JSONL artifacts).
func TestEventJournal(t *testing.T) {
	tr := (&fakeTransport{}).worker("w1", &fakeWorker{queue: []behavior{errReply(&StatusError{Code: 500})}})
	r := newRunner(tr, "w1", "w2")
	var mu sync.Mutex
	kinds := map[string]int{}
	r.OnEvent = func(e Event) {
		mu.Lock()
		kinds[e.Kind]++
		mu.Unlock()
	}
	if _, err := r.ReplayShard(testCtx(t), fakeShard()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, kind := range []string{"dispatch", "worker_down", "retry", "response"} {
		if kinds[kind] == 0 {
			t.Errorf("no %q event emitted (saw %v)", kind, kinds)
		}
	}
}
