package sym

import "sort"

// Constructors with eager constant folding and a small set of algebraic
// peephole simplifications. The simplifications are deliberately conservative
// (they never change the value of an expression under any assignment) and are
// restricted to patterns that actually occur in compiled MiniC programs:
// additions of zero, multiplications by zero/one, double negation, and
// comparison canonicalization.

// maxExprSize caps expression growth. When an expression would exceed the
// cap, the engine concretizes it instead (the caller handles that); the cap
// exists so pathological programs (e.g. diff's LCS inner loop) cannot build
// gigabyte-sized constraint trees.
const maxExprSize = 1 << 14

// NewUn builds a unary expression, folding constants.
func NewUn(op Op, x Expr) Expr {
	if v, ok := IsConst(x); ok {
		return NewConst(evalUn(op, v))
	}
	switch op {
	case OpNot:
		// !(!e) over a comparison folds to bool(e) == e for comparisons.
		if u, ok := x.(*Un); ok && u.Op == OpNot {
			return NewUn(OpBool, u.X)
		}
		// !(a cmp b) flips the comparison, keeping constraints shallow.
		if b, ok := x.(*Bin); ok {
			if neg, ok := negatedCmp(b.Op); ok {
				return NewBin(neg, b.L, b.R)
			}
		}
	case OpBool:
		if isBoolValued(x) {
			return x
		}
	case OpNeg:
		if u, ok := x.(*Un); ok && u.Op == OpNeg {
			return u.X
		}
	case OpBNot:
		if u, ok := x.(*Un); ok && u.Op == OpBNot {
			return u.X
		}
	}
	return &Un{Op: op, X: x, sz: x.size() + 1}
}

// NewBin builds a binary expression, folding constants.
func NewBin(op Op, l, r Expr) Expr {
	lv, lc := IsConst(l)
	rv, rc := IsConst(r)
	if lc && rc {
		return NewConst(evalBin(op, lv, rv))
	}
	switch op {
	case OpAdd:
		if lc && lv == 0 {
			return r
		}
		if rc && rv == 0 {
			return l
		}
	case OpSub:
		if rc && rv == 0 {
			return l
		}
	case OpMul:
		if lc && lv == 0 || rc && rv == 0 {
			return Zero
		}
		if lc && lv == 1 {
			return r
		}
		if rc && rv == 1 {
			return l
		}
	case OpDiv:
		if rc && rv == 1 {
			return l
		}
	case OpAnd:
		if lc && lv == 0 || rc && rv == 0 {
			return Zero
		}
	case OpOr, OpXor:
		if lc && lv == 0 {
			return r
		}
		if rc && rv == 0 {
			return l
		}
	case OpShl, OpShr:
		if rc && rv == 0 {
			return l
		}
	case OpEq:
		// bool(e) == 0  =>  !e ; bool(e) == 1 => bool(e)
		if x, ok := boolValuedOperand(l); ok && rc {
			switch rv {
			case 0:
				return NewUn(OpNot, x)
			case 1:
				return NewUn(OpBool, x)
			}
		}
		if x, ok := boolValuedOperand(r); ok && lc {
			switch lv {
			case 0:
				return NewUn(OpNot, x)
			case 1:
				return NewUn(OpBool, x)
			}
		}
	case OpNe:
		if x, ok := boolValuedOperand(l); ok && rc && rv == 0 {
			return NewUn(OpBool, x)
		}
		if x, ok := boolValuedOperand(r); ok && lc && lv == 0 {
			return NewUn(OpBool, x)
		}
	}
	sz := l.size() + r.size() + 1
	return &Bin{Op: op, L: l, R: r, sz: sz}
}

// TooLarge reports whether e exceeds the engine's expression-size cap.
func TooLarge(e Expr) bool { return e.size() > maxExprSize }

// boolValuedOperand unwraps e when it is known to evaluate to 0 or 1,
// returning the underlying expression whose truth it represents.
func boolValuedOperand(e Expr) (Expr, bool) {
	switch x := e.(type) {
	case *Un:
		if x.Op == OpBool {
			return x.X, true
		}
		if x.Op == OpNot {
			return e, true
		}
	case *Bin:
		if x.Op.IsComparison() {
			return e, true
		}
	}
	return nil, false
}

func isBoolValued(e Expr) bool {
	switch x := e.(type) {
	case *Un:
		return x.Op == OpNot || x.Op == OpBool
	case *Bin:
		return x.Op.IsComparison()
	case *Const:
		return x.V == 0 || x.V == 1
	}
	return false
}

func negatedCmp(op Op) (Op, bool) {
	switch op {
	case OpEq:
		return OpNe, true
	case OpNe:
		return OpEq, true
	case OpLt:
		return OpGe, true
	case OpLe:
		return OpGt, true
	case OpGt:
		return OpLe, true
	case OpGe:
		return OpLt, true
	}
	return OpInvalid, false
}

// Convenience constructors used throughout the engine.

// Add returns l + r.
func Add(l, r Expr) Expr { return NewBin(OpAdd, l, r) }

// Sub returns l - r.
func Sub(l, r Expr) Expr { return NewBin(OpSub, l, r) }

// Mul returns l * r.
func Mul(l, r Expr) Expr { return NewBin(OpMul, l, r) }

// Eq returns l == r as a 0/1 expression.
func Eq(l, r Expr) Expr { return NewBin(OpEq, l, r) }

// Ne returns l != r as a 0/1 expression.
func Ne(l, r Expr) Expr { return NewBin(OpNe, l, r) }

// Lt returns l < r as a 0/1 expression.
func Lt(l, r Expr) Expr { return NewBin(OpLt, l, r) }

// Le returns l <= r as a 0/1 expression.
func Le(l, r Expr) Expr { return NewBin(OpLe, l, r) }

// Not returns the logical negation of e as a 0/1 expression.
func Not(e Expr) Expr { return NewUn(OpNot, e) }

// Bool coerces e to 0/1.
func Bool(e Expr) Expr { return NewUn(OpBool, e) }

// Constraint asserts the truth or falsity of an expression: when Truth is
// true the constraint is e != 0, otherwise e == 0. A slice of constraints is
// a conjunction and describes a path condition.
type Constraint struct {
	E     Expr
	Truth bool
}

// Negated returns the constraint with its truth flipped.
func (c Constraint) Negated() Constraint { return Constraint{E: c.E, Truth: !c.Truth} }

// Holds reports whether the constraint is satisfied under asn.
func (c Constraint) Holds(asn Assignment) bool {
	return (c.E.Eval(asn) != 0) == c.Truth
}

// String implements fmt.Stringer.
func (c Constraint) String() string {
	if c.Truth {
		return Format(c.E)
	}
	return "!(" + Format(c.E) + ")"
}

// AllHold reports whether every constraint in the conjunction holds.
func AllHold(cs []Constraint, asn Assignment) bool {
	for _, c := range cs {
		if !c.Holds(asn) {
			return false
		}
	}
	return true
}

// ConstraintVars returns the set of input variables mentioned by cs.
func ConstraintVars(cs []Constraint) map[int]struct{} {
	set := make(map[int]struct{})
	for _, c := range cs {
		c.E.appendVars(set)
	}
	return set
}

// ConstraintVarIDs returns the sorted, duplicate-free input-variable IDs
// mentioned by cs, reusing buf's storage. It is the allocation-light
// counterpart of ConstraintVars for hot paths.
func ConstraintVarIDs(cs []Constraint, buf []int) []int {
	buf = buf[:0]
	for _, c := range cs {
		buf = c.E.appendVarIDs(buf)
	}
	sort.Ints(buf)
	out := buf[:0]
	for i, v := range buf {
		if i == 0 || v != buf[i-1] {
			out = append(out, v)
		}
	}
	return out
}
