// Package sym implements the symbolic expression language used by the
// concolic execution engine, the replay engine and the constraint solver.
//
// Expressions form an immutable DAG over 64-bit integers with C-like
// semantics: comparisons yield 0 or 1, division truncates toward zero, and
// shifts take the low six bits of the shift count. Each expression is either
// a constant, a symbolic input (one byte or integer of program input), or an
// operator applied to sub-expressions. Constructors constant-fold eagerly so
// that expressions over concrete values collapse back to constants; this is
// what keeps concolic execution cheap on the mostly-concrete parts of a run.
package sym

import (
	"fmt"
	"strings"
)

// Op identifies an operator in a symbolic expression.
type Op int

// Binary and unary operators. The numeric values are stable and are used in
// trace encoding, so new operators must be appended.
const (
	OpInvalid Op = iota

	// Arithmetic.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod

	// Bitwise.
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr

	// Comparisons; result is 0 or 1.
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe

	// Unary.
	OpNeg  // arithmetic negation
	OpBNot // bitwise complement
	OpNot  // logical not: x==0 -> 1, else 0

	// Bool coerces a value to 0/1 (x != 0). Used when a value is placed in
	// a boolean context so that path constraints stay canonical.
	OpBool
)

var opNames = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpAnd: "&", OpOr: "|", OpXor: "^", OpShl: "<<", OpShr: ">>",
	OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpNeg: "neg", OpBNot: "~", OpNot: "!", OpBool: "bool",
}

// String returns the surface syntax of the operator.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsComparison reports whether the operator always yields 0 or 1.
func (o Op) IsComparison() bool {
	switch o {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpNot, OpBool:
		return true
	}
	return false
}

// Expr is a node in the symbolic expression DAG. Implementations are *Const,
// *Input, *Un and *Bin. Expressions are immutable after construction.
type Expr interface {
	// Eval computes the concrete value of the expression under the given
	// assignment of input variables.
	Eval(asn Assignment) int64
	// appendVars accumulates the IDs of input variables into set.
	appendVars(set map[int]struct{})
	// appendVarIDs appends every input-variable occurrence to buf.
	appendVarIDs(buf []int) []int
	// write renders the expression into sb.
	write(sb *strings.Builder)
	// size returns the number of nodes of the expression tree.
	size() int
}

// Assignment maps symbolic input variable IDs to concrete values.
type Assignment interface {
	// Value returns the concrete value bound to the input variable.
	Value(id int) int64
}

// MapAssignment is an Assignment backed by a map; missing IDs read as zero.
type MapAssignment map[int]int64

// Value implements Assignment.
func (m MapAssignment) Value(id int) int64 { return m[id] }

// Const is a concrete 64-bit constant.
type Const struct {
	V int64
}

// NewConst returns a constant expression. Small constants are interned.
func NewConst(v int64) *Const {
	if v >= 0 && v < int64(len(smallConsts)) {
		return &smallConsts[v]
	}
	return &Const{V: v}
}

var smallConsts = func() [257]Const {
	var a [257]Const
	for i := range a {
		a[i].V = int64(i)
	}
	return a
}()

// Zero and One are the canonical boolean constants.
var (
	Zero = NewConst(0)
	One  = NewConst(1)
)

// Eval implements Expr.
func (c *Const) Eval(Assignment) int64 { return c.V }

func (c *Const) appendVars(map[int]struct{}) {}

func (c *Const) appendVarIDs(buf []int) []int { return buf }

func (c *Const) write(sb *strings.Builder) { fmt.Fprintf(sb, "%d", c.V) }

func (c *Const) size() int { return 1 }

// String implements fmt.Stringer.
func (c *Const) String() string { return fmt.Sprintf("%d", c.V) }

// Input is a symbolic input variable: one byte or integer of program input.
// Lo and Hi bound its domain (inclusive); the solver relies on these bounds
// being tight for byte-granularity inputs.
type Input struct {
	ID   int
	Name string
	Lo   int64
	Hi   int64
}

// NewInput returns a fresh input variable expression with the given domain.
func NewInput(id int, name string, lo, hi int64) *Input {
	if lo > hi {
		lo, hi = hi, lo
	}
	return &Input{ID: id, Name: name, Lo: lo, Hi: hi}
}

// Eval implements Expr.
func (in *Input) Eval(asn Assignment) int64 {
	if asn == nil {
		return 0
	}
	return asn.Value(in.ID)
}

func (in *Input) appendVars(set map[int]struct{}) { set[in.ID] = struct{}{} }

func (in *Input) appendVarIDs(buf []int) []int { return append(buf, in.ID) }

func (in *Input) write(sb *strings.Builder) {
	if in.Name != "" {
		sb.WriteString(in.Name)
		return
	}
	fmt.Fprintf(sb, "in%d", in.ID)
}

func (in *Input) size() int { return 1 }

// String implements fmt.Stringer.
func (in *Input) String() string { return Format(in) }

// Un is a unary operator applied to a sub-expression.
type Un struct {
	Op Op
	X  Expr
	sz int
}

// Eval implements Expr.
func (u *Un) Eval(asn Assignment) int64 { return evalUn(u.Op, u.X.Eval(asn)) }

func (u *Un) appendVars(set map[int]struct{}) { u.X.appendVars(set) }

func (u *Un) appendVarIDs(buf []int) []int { return u.X.appendVarIDs(buf) }

func (u *Un) write(sb *strings.Builder) {
	sb.WriteString(u.Op.String())
	sb.WriteString("(")
	u.X.write(sb)
	sb.WriteString(")")
}

func (u *Un) size() int { return u.sz }

// String implements fmt.Stringer.
func (u *Un) String() string { return Format(u) }

// Bin is a binary operator applied to two sub-expressions.
type Bin struct {
	Op   Op
	L, R Expr
	sz   int
}

// Eval implements Expr.
func (b *Bin) Eval(asn Assignment) int64 {
	return evalBin(b.Op, b.L.Eval(asn), b.R.Eval(asn))
}

func (b *Bin) appendVars(set map[int]struct{}) {
	b.L.appendVars(set)
	b.R.appendVars(set)
}

func (b *Bin) appendVarIDs(buf []int) []int {
	return b.R.appendVarIDs(b.L.appendVarIDs(buf))
}

func (b *Bin) write(sb *strings.Builder) {
	sb.WriteString("(")
	b.L.write(sb)
	sb.WriteString(" ")
	sb.WriteString(b.Op.String())
	sb.WriteString(" ")
	b.R.write(sb)
	sb.WriteString(")")
}

func (b *Bin) size() int { return b.sz }

// String implements fmt.Stringer.
func (b *Bin) String() string { return Format(b) }

func evalUn(op Op, x int64) int64 {
	switch op {
	case OpNeg:
		return -x
	case OpBNot:
		return ^x
	case OpNot:
		if x == 0 {
			return 1
		}
		return 0
	case OpBool:
		if x != 0 {
			return 1
		}
		return 0
	}
	panic(fmt.Sprintf("sym: bad unary op %v", op))
}

func evalBin(op Op, l, r int64) int64 {
	switch op {
	case OpAdd:
		return l + r
	case OpSub:
		return l - r
	case OpMul:
		return l * r
	case OpDiv:
		if r == 0 {
			return 0 // division by zero is trapped by the VM before here
		}
		return l / r
	case OpMod:
		if r == 0 {
			return 0
		}
		return l % r
	case OpAnd:
		return l & r
	case OpOr:
		return l | r
	case OpXor:
		return l ^ r
	case OpShl:
		return l << uint64(r&63)
	case OpShr:
		return l >> uint64(r&63)
	case OpEq:
		return b2i(l == r)
	case OpNe:
		return b2i(l != r)
	case OpLt:
		return b2i(l < r)
	case OpLe:
		return b2i(l <= r)
	case OpGt:
		return b2i(l > r)
	case OpGe:
		return b2i(l >= r)
	}
	panic(fmt.Sprintf("sym: bad binary op %v", op))
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Format renders an expression using infix syntax.
func Format(e Expr) string {
	var sb strings.Builder
	e.write(&sb)
	return sb.String()
}

// Size returns the number of nodes in the expression tree. It is used to cap
// constraint complexity and as a metric in experiment reports.
func Size(e Expr) int { return e.size() }

// Vars returns the set of input-variable IDs the expression depends on.
func Vars(e Expr) map[int]struct{} {
	set := make(map[int]struct{})
	e.appendVars(set)
	return set
}

// AppendVarIDs appends the ID of every input-variable occurrence in e to buf
// and returns the extended slice. Duplicates are preserved; callers needing a
// set should sort and compact. This is the allocation-free counterpart of
// Vars for hot paths.
func AppendVarIDs(e Expr, buf []int) []int { return e.appendVarIDs(buf) }

// IsConst reports whether e is a constant, returning its value when so.
func IsConst(e Expr) (int64, bool) {
	if c, ok := e.(*Const); ok {
		return c.V, true
	}
	return 0, false
}
