package sym

import (
	"testing"
	"testing/quick"
)

func TestConstFolding(t *testing.T) {
	cases := []struct {
		name string
		e    Expr
		want int64
	}{
		{"add", NewBin(OpAdd, NewConst(2), NewConst(3)), 5},
		{"sub", NewBin(OpSub, NewConst(2), NewConst(3)), -1},
		{"mul", NewBin(OpMul, NewConst(4), NewConst(3)), 12},
		{"div", NewBin(OpDiv, NewConst(7), NewConst(2)), 3},
		{"divneg", NewBin(OpDiv, NewConst(-7), NewConst(2)), -3},
		{"mod", NewBin(OpMod, NewConst(7), NewConst(3)), 1},
		{"modneg", NewBin(OpMod, NewConst(-7), NewConst(3)), -1},
		{"eq", NewBin(OpEq, NewConst(3), NewConst(3)), 1},
		{"ne", NewBin(OpNe, NewConst(3), NewConst(3)), 0},
		{"lt", NewBin(OpLt, NewConst(2), NewConst(3)), 1},
		{"le", NewBin(OpLe, NewConst(3), NewConst(3)), 1},
		{"gt", NewBin(OpGt, NewConst(3), NewConst(3)), 0},
		{"ge", NewBin(OpGe, NewConst(3), NewConst(2)), 1},
		{"and", NewBin(OpAnd, NewConst(0b1100), NewConst(0b1010)), 0b1000},
		{"or", NewBin(OpOr, NewConst(0b1100), NewConst(0b1010)), 0b1110},
		{"xor", NewBin(OpXor, NewConst(0b1100), NewConst(0b1010)), 0b0110},
		{"shl", NewBin(OpShl, NewConst(1), NewConst(4)), 16},
		{"shr", NewBin(OpShr, NewConst(16), NewConst(4)), 1},
		{"neg", NewUn(OpNeg, NewConst(5)), -5},
		{"bnot", NewUn(OpBNot, NewConst(0)), -1},
		{"not0", NewUn(OpNot, NewConst(0)), 1},
		{"not1", NewUn(OpNot, NewConst(42)), 0},
		{"bool", NewUn(OpBool, NewConst(42)), 1},
	}
	for _, tc := range cases {
		c, ok := tc.e.(*Const)
		if !ok {
			t.Errorf("%s: expected constant folding, got %T", tc.name, tc.e)
			continue
		}
		if c.V != tc.want {
			t.Errorf("%s: got %d, want %d", tc.name, c.V, tc.want)
		}
	}
}

func TestPeepholes(t *testing.T) {
	x := NewInput(0, "x", 0, 255)

	if got := NewBin(OpAdd, x, Zero); got != Expr(x) {
		t.Errorf("x+0: got %v", Format(got))
	}
	if got := NewBin(OpAdd, Zero, x); got != Expr(x) {
		t.Errorf("0+x: got %v", Format(got))
	}
	if got := NewBin(OpMul, x, Zero); got != Expr(Zero) {
		t.Errorf("x*0: got %v", Format(got))
	}
	if got := NewBin(OpMul, One, x); got != Expr(x) {
		t.Errorf("1*x: got %v", Format(got))
	}
	if got := NewBin(OpSub, x, Zero); got != Expr(x) {
		t.Errorf("x-0: got %v", Format(got))
	}
	if got := NewUn(OpNeg, NewUn(OpNeg, x)); got != Expr(x) {
		t.Errorf("-(-x): got %v", Format(got))
	}
	if got := NewUn(OpBNot, NewUn(OpBNot, x)); got != Expr(x) {
		t.Errorf("^^x: got %v", Format(got))
	}

	// !(x < 5) becomes x >= 5.
	e := NewUn(OpNot, NewBin(OpLt, x, NewConst(5)))
	b, ok := e.(*Bin)
	if !ok || b.Op != OpGe {
		t.Errorf("!(x<5): got %v", Format(e))
	}

	// bool(x == 3) is idempotent.
	cmp := NewBin(OpEq, x, NewConst(3))
	if got := NewUn(OpBool, cmp); got != cmp {
		t.Errorf("bool(cmp): got %v", Format(got))
	}

	// (x == 3) == 0 becomes x != 3.
	e = NewBin(OpEq, cmp, Zero)
	b, ok = e.(*Bin)
	if !ok || b.Op != OpNe {
		t.Errorf("(x==3)==0: got %v", Format(e))
	}
	// (x == 3) == 1 stays boolean-valued and equivalent.
	e = NewBin(OpEq, cmp, One)
	for _, v := range []int64{0, 3, 7} {
		asn := MapAssignment{0: v}
		if e.Eval(asn) != cmp.Eval(asn) {
			t.Errorf("(x==3)==1 under x=%d: %d vs %d", v, e.Eval(asn), cmp.Eval(asn))
		}
	}
}

func TestEvalWithAssignment(t *testing.T) {
	x := NewInput(1, "x", 0, 255)
	y := NewInput(2, "y", 0, 255)
	e := NewBin(OpAdd, NewBin(OpMul, x, NewConst(10)), y)
	got := e.Eval(MapAssignment{1: 4, 2: 2})
	if got != 42 {
		t.Fatalf("10x+y: got %d, want 42", got)
	}
}

func TestVars(t *testing.T) {
	x := NewInput(1, "x", 0, 255)
	y := NewInput(9, "y", 0, 255)
	e := NewBin(OpAdd, NewBin(OpMul, x, y), x)
	vars := Vars(e)
	if len(vars) != 2 {
		t.Fatalf("vars: got %v", vars)
	}
	for _, id := range []int{1, 9} {
		if _, ok := vars[id]; !ok {
			t.Errorf("missing var %d", id)
		}
	}
}

func TestConstraint(t *testing.T) {
	x := NewInput(0, "x", 0, 255)
	c := Constraint{E: NewBin(OpLt, x, NewConst(10)), Truth: true}
	if !c.Holds(MapAssignment{0: 5}) {
		t.Error("x<10 should hold for x=5")
	}
	if c.Holds(MapAssignment{0: 15}) {
		t.Error("x<10 should not hold for x=15")
	}
	n := c.Negated()
	if n.Holds(MapAssignment{0: 5}) {
		t.Error("negated should not hold for x=5")
	}
	if !n.Holds(MapAssignment{0: 15}) {
		t.Error("negated should hold for x=15")
	}
	if n.Negated().Truth != c.Truth {
		t.Error("double negation should restore truth")
	}
}

func TestAllHold(t *testing.T) {
	x := NewInput(0, "x", 0, 255)
	cs := []Constraint{
		{E: NewBin(OpGe, x, NewConst(3)), Truth: true},
		{E: NewBin(OpLe, x, NewConst(7)), Truth: true},
	}
	if !AllHold(cs, MapAssignment{0: 5}) {
		t.Error("3<=x<=7 should hold for 5")
	}
	if AllHold(cs, MapAssignment{0: 9}) {
		t.Error("3<=x<=7 should fail for 9")
	}
}

func TestFormat(t *testing.T) {
	x := NewInput(0, "x", 0, 255)
	e := NewBin(OpAdd, x, NewConst(1))
	if got := Format(e); got != "(x + 1)" {
		t.Errorf("format: got %q", got)
	}
	anon := NewInput(7, "", 0, 255)
	if got := Format(anon); got != "in7" {
		t.Errorf("anon format: got %q", got)
	}
	c := Constraint{E: e, Truth: false}
	if got := c.String(); got != "!((x + 1))" {
		t.Errorf("constraint format: got %q", got)
	}
}

func TestSize(t *testing.T) {
	x := NewInput(0, "x", 0, 255)
	e := NewBin(OpAdd, x, NewConst(1)) // 3 nodes
	if Size(e) != 3 {
		t.Errorf("size: got %d, want 3", Size(e))
	}
	e2 := NewUn(OpNeg, e)
	if Size(e2) != 4 {
		t.Errorf("size: got %d, want 4", Size(e2))
	}
	if TooLarge(e2) {
		t.Error("small expr flagged too large")
	}
}

// TestQuickFoldMatchesEval checks, property-based, that building an
// expression from two constants always equals direct evaluation, for every
// binary operator.
func TestQuickFoldMatchesEval(t *testing.T) {
	ops := []Op{OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor,
		OpShl, OpShr, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	f := func(a, b int32, opIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		l, r := int64(a), int64(b)
		e := NewBin(op, NewConst(l), NewConst(r))
		c, ok := e.(*Const)
		return ok && c.V == evalBin(op, l, r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickNotIsInvolution checks that logical negation of a comparison
// always evaluates to the complement.
func TestQuickNotIsInvolution(t *testing.T) {
	x := NewInput(0, "x", 0, 255)
	cmps := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	f := func(v uint8, k int16, opIdx uint8) bool {
		op := cmps[int(opIdx)%len(cmps)]
		e := NewBin(op, x, NewConst(int64(k)))
		n := NewUn(OpNot, e)
		asn := MapAssignment{0: int64(v)}
		return n.Eval(asn) == 1-e.Eval(asn)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickPeepholePreservesValue builds random small expressions and checks
// that the simplified construction evaluates identically to the raw
// operator semantics.
func TestQuickPeepholePreservesValue(t *testing.T) {
	x := NewInput(0, "x", 0, 255)
	y := NewInput(1, "y", 0, 255)
	ops := []Op{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpEq, OpNe, OpLt, OpGe}
	f := func(vx, vy uint8, k int8, op1, op2 uint8) bool {
		o1 := ops[int(op1)%len(ops)]
		o2 := ops[int(op2)%len(ops)]
		e := NewBin(o2, NewBin(o1, x, NewConst(int64(k))), y)
		asn := MapAssignment{0: int64(vx), 1: int64(vy)}
		inner := evalBin(o1, int64(vx), int64(k))
		want := evalBin(o2, inner, int64(vy))
		return e.Eval(asn) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInputDomainNormalization(t *testing.T) {
	in := NewInput(0, "x", 255, 0)
	if in.Lo != 0 || in.Hi != 255 {
		t.Errorf("domain not normalized: [%d,%d]", in.Lo, in.Hi)
	}
}

func TestConstraintVars(t *testing.T) {
	x := NewInput(3, "x", 0, 255)
	y := NewInput(5, "y", 0, 255)
	cs := []Constraint{
		{E: Eq(x, NewConst(1)), Truth: true},
		{E: Lt(y, NewConst(9)), Truth: false},
	}
	vars := ConstraintVars(cs)
	if len(vars) != 2 {
		t.Fatalf("got %v", vars)
	}
}
