package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// JSONL is the one JSONL encoder in the system: a locked writer that
// appends one JSON object per line and keeps record/byte accounting. The
// tracer, the event sink and the intake journal all encode through it, so
// every journal the pipeline writes shares one serialization path.
type JSONL struct {
	mu      sync.Mutex
	w       io.Writer
	records int64
	bytes   int64
}

// NewJSONL returns an encoder appending to w. A nil w returns a nil
// encoder, which Encode and Stats accept (Encode drops silently).
func NewJSONL(w io.Writer) *JSONL {
	if w == nil {
		return nil
	}
	return &JSONL{w: w}
}

// Seed initializes the record/byte counters, for callers resuming an
// existing file (the intake journal after a restart replay).
func (l *JSONL) Seed(records, bytes int64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.records = records
	l.bytes = bytes
	l.mu.Unlock()
}

// Encode marshals v and appends it as one newline-terminated line. The
// byte counter includes partial writes, so a caller that treats an error
// as fatal still reports how far the file got.
func (l *JSONL) Encode(v any) error {
	if l == nil {
		return nil
	}
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	n, err := l.w.Write(data)
	l.bytes += int64(n)
	if err != nil {
		return err
	}
	l.records++
	return nil
}

// Stats reports how many records and bytes have been written (including
// any Seed base).
func (l *JSONL) Stats() (records, bytes int64) {
	if l == nil {
		return 0, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records, l.bytes
}
