package obs

import (
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the binning rule: bounds are
// inclusive upper edges, values above the last bound land in overflow.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{10, 100, 1000})
	for _, v := range []float64{0, 10, 10.0001, 100, 999, 1000, 1000.5, 5e6} {
		h.Observe(v)
	}
	s := h.Snapshot("x")
	want := []int64{2, 2, 2, 2} // {0,10} {10.0001,100} {999,1000} {1000.5,5e6}
	for i, n := range want {
		if s.Counts[i] != n {
			t.Fatalf("bucket %d: got %d want %d (all: %v)", i, s.Counts[i], n, s.Counts)
		}
	}
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	wantSum := 0.0 + 10 + 10.0001 + 100 + 999 + 1000 + 1000.5 + 5e6
	if s.Sum != wantSum {
		t.Fatalf("sum = %g, want %g", s.Sum, wantSum)
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {5, 5}, {10, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

// TestHistogramMerge folds two per-worker snapshots and checks counts,
// totals and the layout-mismatch refusal.
func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	b := NewHistogram([]float64{1, 2})
	a.Observe(0.5)
	a.Observe(1.5)
	b.Observe(1.5)
	b.Observe(99)
	sa := a.Snapshot("m")
	sb := b.Snapshot("m")
	if err := sa.Merge(sb); err != nil {
		t.Fatal(err)
	}
	if got, want := sa.Counts, []int64{1, 2, 1}; !equalInt64(got, want) {
		t.Fatalf("merged counts = %v, want %v", got, want)
	}
	if sa.Count != 4 {
		t.Fatalf("merged count = %d, want 4", sa.Count)
	}
	if sa.Sum != 0.5+1.5+1.5+99 {
		t.Fatalf("merged sum = %g", sa.Sum)
	}

	c := NewHistogram([]float64{1, 3}).Snapshot("m")
	if err := sa.Merge(c); err == nil {
		t.Fatal("merge with mismatched bounds did not error")
	}
	d := NewHistogram([]float64{1}).Snapshot("m")
	if err := sa.Merge(d); err == nil {
		t.Fatal("merge with fewer bounds did not error")
	}
}

// TestHistogramConcurrentSnapshot hammers a histogram from many
// goroutines while snapshotting: every snapshot must be internally
// consistent (Count == sum of bucket counts) and the final state exact.
// Run under -race this is also the data-race gate for the hot path.
func TestHistogramConcurrentSnapshot(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 10))
	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(float64(i%1024) + float64(w))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		s := h.Snapshot("x")
		var sum int64
		for _, n := range s.Counts {
			sum += n
		}
		if sum != s.Count {
			t.Fatalf("torn snapshot: sum(Counts)=%d Count=%d", sum, s.Count)
		}
		select {
		case <-done:
			final := h.Snapshot("x")
			if final.Count != writers*perWriter {
				t.Fatalf("final count = %d, want %d", final.Count, writers*perWriter)
			}
			return
		default:
		}
	}
}

func TestRegistrySnapshotStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total").Add(3)
	r.Counter("aa_total").Inc()
	r.Gauge("queue_depth").Set(7)
	r.Histogram("lat_ns", []float64{1, 10}).Observe(5)
	r.Histogram("lat_ns", []float64{9999}).Observe(11) // same name: first layout wins
	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "aa_total" || s.Counters[1].Name != "zz_total" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	if s.Counters[1].Value != 3 || s.Counters[0].Value != 1 {
		t.Fatalf("counter values wrong: %+v", s.Counters)
	}
	if len(s.Gauges) != 1 || s.Gauges[0].Value != 7 {
		t.Fatalf("gauge wrong: %+v", s.Gauges)
	}
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms: %+v", s.Histograms)
	}
	h := s.Histograms[0]
	if len(h.Bounds) != 2 || h.Count != 2 {
		t.Fatalf("first-layout-wins violated: %+v", h)
	}
	// Same name returns the same instrument.
	if r.Counter("aa_total") != r.Counter("aa_total") {
		t.Fatal("counter get-or-create not idempotent")
	}
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9lives", "has space", "dash-ed", "dot.ted"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad)
		}()
	}
}

func TestQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30})
	for i := 0; i < 10; i++ {
		h.Observe(5) // all in first bucket
	}
	s := h.Snapshot("q")
	if q := s.Quantile(0.5); q <= 0 || q > 10 {
		t.Fatalf("p50 = %g, want within (0,10]", q)
	}
	if q := s.Quantile(1.0); q != 10 {
		t.Fatalf("p100 = %g, want 10", q)
	}
	h.Observe(1e9) // overflow clamps to last bound
	s = h.Snapshot("q")
	if q := s.Quantile(1.0); q != 30 {
		t.Fatalf("p100 with overflow = %g, want 30 (clamped)", q)
	}
	if q := (HistogramSnapshot{Bounds: []float64{1}, Counts: []int64{0, 0}}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %g, want 0", q)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(100, 10, 4)
	want := []float64{100, 1000, 10000, 100000}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
}

func equalInt64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
