package obs

import "io"

// Event is the one event schema the pipeline journals: the fleet runner's
// dispatch/steal/failure stream and the harness artifacts all encode this
// struct, so every JSONL journal in the system lines up field-for-field.
// The wire shape is backward compatible with the fleet's original event
// journal; Trace/Span are additive and tie an event into the span tree.
type Event struct {
	// Kind names the event ("dispatch", "steal", "retry", "worker-failure", ...).
	Kind string `json:"kind"`
	// Worker is the worker URL or name involved, when any.
	Worker string `json:"worker,omitempty"`
	// Shard is the shard ID involved, when any.
	Shard string `json:"shard,omitempty"`
	// Attempt is the 1-based delivery attempt, when retries apply.
	Attempt int `json:"attempt,omitempty"`
	// Err carries the failure text for error events.
	Err string `json:"err,omitempty"`
	// MS is the event's duration in milliseconds, when timed.
	MS float64 `json:"ms,omitempty"`
	// Trace links the event to its trace, when one is active.
	Trace string `json:"trace,omitempty"`
	// Span links the event to the span it happened under.
	Span string `json:"span,omitempty"`
}

// EventSink serializes events to one JSONL stream. It replaces the
// hand-rolled mutex-plus-encoder pairs that grew in the harness: one
// encoder (JSONL), one count. A nil sink drops everything.
type EventSink struct {
	jl *JSONL
}

// NewEventSink returns a sink appending one JSON object per event to w.
// A nil w returns a nil sink, which Emit and Count accept.
func NewEventSink(w io.Writer) *EventSink {
	if w == nil {
		return nil
	}
	return &EventSink{jl: NewJSONL(w)}
}

// Emit writes one event.
func (s *EventSink) Emit(e Event) {
	if s == nil {
		return
	}
	s.jl.Encode(e)
}

// Count reports how many events have been written.
func (s *EventSink) Count() int64 {
	if s == nil {
		return 0
	}
	n, _ := s.jl.Stats()
	return n
}
