package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a process-wide set of named instruments. Get-or-create takes
// a lock; every instrument returned is safe for concurrent use with atomic
// hot paths, so callers cache the pointer once and never pay the map lookup
// on the path they instrument.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter is a monotonically increasing integer.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer that can move both ways.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets. Bounds are inclusive
// upper edges in ascending order; one implicit overflow bucket catches
// everything above the last bound. Observe is three atomic operations and
// no locks, which is what lets the replay engine observe every single run.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	sumBits atomic.Uint64  // float64 bits, updated by CAS
}

// NewHistogram builds a standalone histogram (outside any registry) with
// the given ascending upper bounds. It panics on empty or unsorted bounds —
// bucket layouts are compile-time decisions, not runtime inputs.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: inclusive upper edge
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Snapshot captures the histogram in one pass. Count is derived from the
// bucket counts read in that pass, so the invariant Count == sum(Counts)
// holds even while other goroutines observe concurrently; Sum may trail by
// in-flight observations but never includes a value the buckets miss.
func (h *Histogram) Snapshot(name string) HistogramSnapshot {
	s := HistogramSnapshot{
		Name:   name,
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		n := h.counts[i].Load()
		s.Counts[i] = n
		s.Count += n
	}
	s.Sum = math.Float64frombits(h.sumBits.Load())
	return s
}

// ExpBuckets returns n ascending bounds starting at start and multiplying
// by factor — the standard layout for latency-style histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		panic("obs: ExpBuckets needs n >= 1, start > 0, factor > 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		mustValidName(name)
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		mustValidName(name)
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with bounds on first
// use. Later calls ignore bounds and return the existing instrument — the
// first registration wins, so one subsystem owns each layout.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		mustValidName(name)
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Snapshot captures every instrument into a stable view: names sorted,
// values read in one pass per instrument. Two scrapes racing with writers
// each see an internally consistent set — no torn histogram where the
// bucket counts and the total disagree.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	r.mu.Unlock()

	var s Snapshot
	for name, c := range counters {
		s.Counters = append(s.Counters, CounterSnapshot{Name: name, Value: c.Value()})
	}
	for name, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: name, Value: g.Value()})
	}
	for name, h := range hists {
		s.Histograms = append(s.Histograms, h.Snapshot(name))
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Snapshot is a stable point-in-time view of a registry, sorted by name
// within each kind. It is what both exposition formats render from.
type Snapshot struct {
	// Counters lists every counter, sorted by name.
	Counters []CounterSnapshot `json:"counters,omitempty"`
	// Gauges lists every gauge, sorted by name.
	Gauges []GaugeSnapshot `json:"gauges,omitempty"`
	// Histograms lists every histogram, sorted by name.
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// CounterSnapshot is one counter's captured value.
type CounterSnapshot struct {
	// Name is the registered metric name.
	Name string `json:"name"`
	// Value is the count at capture time.
	Value int64 `json:"value"`
}

// GaugeSnapshot is one gauge's captured value.
type GaugeSnapshot struct {
	// Name is the registered metric name.
	Name string `json:"name"`
	// Value is the reading at capture time.
	Value int64 `json:"value"`
}

// HistogramSnapshot is one histogram's captured distribution.
type HistogramSnapshot struct {
	// Name is the registered metric name.
	Name string `json:"name"`
	// Bounds are the inclusive upper bucket edges, ascending.
	Bounds []float64 `json:"bounds"`
	// Counts holds one entry per bound plus the overflow bucket last;
	// sum(Counts) == Count by construction.
	Counts []int64 `json:"counts"`
	// Count is the total number of observations captured.
	Count int64 `json:"count"`
	// Sum is the total of all observed values.
	Sum float64 `json:"sum"`
}

// Merge folds another snapshot of the same bucket layout into s — how
// per-worker histograms combine into a fleet-wide one. It errors on a
// layout mismatch instead of silently misbinning.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) error {
	if len(o.Bounds) != len(s.Bounds) {
		return fmt.Errorf("obs: merging %q: %d bounds vs %d", s.Name, len(o.Bounds), len(s.Bounds))
	}
	for i, b := range o.Bounds {
		if b != s.Bounds[i] {
			return fmt.Errorf("obs: merging %q: bound %d is %g vs %g", s.Name, i, b, s.Bounds[i])
		}
	}
	for i, n := range o.Counts {
		s.Counts[i] += n
	}
	s.Count += o.Count
	s.Sum += o.Sum
	return nil
}

// Quantile estimates the q-th quantile (0 < q <= 1) from the bucket
// counts by linear interpolation inside the selected bucket. Observations
// in the overflow bucket clamp to the last bound. It returns 0 for an
// empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var seen float64
	for i, n := range s.Counts {
		if n == 0 {
			continue
		}
		if seen+float64(n) >= rank {
			hi := s.Bounds[len(s.Bounds)-1]
			lo := 0.0
			if i < len(s.Bounds) {
				hi = s.Bounds[i]
			}
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			frac := (rank - seen) / float64(n)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		seen += float64(n)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// mustValidName enforces the Prometheus metric-name charset at
// registration time so exposition can never emit an unparsable line.
func mustValidName(name string) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
