package obs

import (
	"encoding/json"
	"net/http"
	"strings"
)

// WantsJSON implements the /metrics content negotiation used across the
// daemons: only an explicit application/json (or +json) Accept selects the
// JSON view; everything else gets Prometheus text.
func WantsJSON(accept string) bool {
	return strings.Contains(accept, "application/json") || strings.Contains(accept, "+json")
}

// ServeMetrics writes a registry snapshot in the negotiated exposition
// format: Prometheus text 0.0.4 by default, the snapshot as JSON behind an
// explicit application/json Accept.
func ServeMetrics(w http.ResponseWriter, r *http.Request, snap Snapshot) {
	if WantsJSON(r.Header.Get("Accept")) {
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WritePrometheus(w, snap)
}
