// Package obs is the observability substrate shared by every layer of the
// pipeline: a metrics registry (counters, gauges, fixed-bucket histograms
// with atomic hot paths and a stable snapshot API), structured trace spans
// with IDs that propagate over the HTTP hops between tune, pathlogd and
// shardworkerd, and a single JSONL event schema that the fleet's event
// journal and the harness artifacts consume instead of hand-rolled
// encoders.
//
// The registry is exposition-agnostic: Snapshot returns a stable, sorted
// view taken in one pass, and WritePrometheus / WriteJSON render that view
// in either format. Nothing in the hot paths allocates or takes a lock —
// counters and histogram buckets are atomic adds, so the replay engine can
// observe every run without disturbing the bench gate.
package obs
