package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// TraceHeader carries span identity across the pipeline's two HTTP hops
// (POST /report to pathlogd, POST /shard to shardworkerd) as
// "<trace-id>-<span-id>", so one tune invocation yields one coherent span
// tree across three processes.
const TraceHeader = "X-Pathlog-Trace"

// SpanContext is the wire-visible identity of a span: enough to parent a
// child in another process.
type SpanContext struct {
	// TraceID groups every span of one logical operation.
	TraceID string
	// SpanID identifies one span within the trace.
	SpanID string
}

// SpanRecord is one finished span as emitted to the JSONL trace stream.
// Each process appends its own records; the harness merges the files and
// joins them on the trace field.
type SpanRecord struct {
	// Trace is the trace ID shared by the whole operation.
	Trace string `json:"trace"`
	// Span is this span's ID.
	Span string `json:"span"`
	// Parent is the parent span's ID; empty for a root.
	Parent string `json:"parent,omitempty"`
	// Name says what the span covers ("balance.generation", "intake.ingest", ...).
	Name string `json:"name"`
	// Proc names the emitting process ("tune", "pathlogd", "shardworkerd").
	Proc string `json:"proc,omitempty"`
	// StartUnixNS is the span's start in Unix nanoseconds.
	StartUnixNS int64 `json:"start_unix_ns"`
	// DurNS is the span's duration in nanoseconds.
	DurNS int64 `json:"dur_ns"`
	// Attrs carries small string attributes (shard IDs, outcomes, counts).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Tracer emits finished spans as JSONL. A nil Tracer is fully usable:
// spans still mint and propagate IDs (so a process that doesn't record
// still links its upstream to its downstream) — they just write nothing.
type Tracer struct {
	jl   *JSONL
	proc string
}

// NewTracer returns a tracer that appends one JSON object per finished
// span to w, stamping each with proc. A nil w returns a nil tracer, which
// every method accepts.
func NewTracer(w io.Writer, proc string) *Tracer {
	if w == nil {
		return nil
	}
	return &Tracer{jl: NewJSONL(w), proc: proc}
}

// Count reports how many spans have been written.
func (t *Tracer) Count() int64 {
	if t == nil {
		return 0
	}
	n, _ := t.jl.Stats()
	return n
}

// Span is one in-flight timed operation. End finishes it and (when the
// tracer records) writes its record.
type Span struct {
	tracer *Tracer
	sc     SpanContext
	parent string
	name   string
	start  time.Time
	mu     sync.Mutex
	attrs  map[string]string
	ended  bool
}

type ctxKey int

const (
	spanKey ctxKey = iota
	remoteKey
)

// StartSpan begins a span named name. Its parent is the current span in
// ctx, or the remote span context Extract placed there, or nothing (a new
// trace root). The returned context carries the new span for children.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{tracer: t, name: name, start: time.Now()}
	switch {
	case spanFrom(ctx) != nil:
		p := spanFrom(ctx)
		s.sc = SpanContext{TraceID: p.sc.TraceID, SpanID: newID(8)}
		s.parent = p.sc.SpanID
	case remoteFrom(ctx) != (SpanContext{}):
		r := remoteFrom(ctx)
		s.sc = SpanContext{TraceID: r.TraceID, SpanID: newID(8)}
		s.parent = r.SpanID
	default:
		s.sc = SpanContext{TraceID: newID(16), SpanID: newID(8)}
	}
	return context.WithValue(ctx, spanKey, s), s
}

// Context returns the span's wire identity.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// SetAttr attaches a small string attribute to the span.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[k] = v
	s.mu.Unlock()
}

// End finishes the span and writes its record. Safe to call more than
// once; only the first call records.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	t := s.tracer
	if t == nil {
		return
	}
	t.jl.Encode(SpanRecord{
		Trace:       s.sc.TraceID,
		Span:        s.sc.SpanID,
		Parent:      s.parent,
		Name:        s.name,
		Proc:        t.proc,
		StartUnixNS: s.start.UnixNano(),
		DurNS:       time.Since(s.start).Nanoseconds(),
		Attrs:       attrs,
	})
}

func spanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

func remoteFrom(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(remoteKey).(SpanContext)
	return sc
}

// SpanFromContext returns the current in-process span, or nil.
func SpanFromContext(ctx context.Context) *Span { return spanFrom(ctx) }

// Inject stamps the current span's identity (or the remote identity the
// context arrived with) onto h for a downstream hop. No span, no header.
func Inject(ctx context.Context, h http.Header) {
	sc := SpanContext{}
	if s := spanFrom(ctx); s != nil {
		sc = s.sc
	} else {
		sc = remoteFrom(ctx)
	}
	if sc.TraceID == "" {
		return
	}
	h.Set(TraceHeader, sc.TraceID+"-"+sc.SpanID)
}

// Extract reads the trace header and, when present and well-formed,
// returns a context whose next StartSpan parents under the remote span.
// A missing or malformed header returns ctx unchanged.
func Extract(ctx context.Context, h http.Header) context.Context {
	v := h.Get(TraceHeader)
	if v == "" {
		return ctx
	}
	trace, span, ok := strings.Cut(v, "-")
	if !ok || !validID(trace) || !validID(span) {
		return ctx
	}
	return context.WithValue(ctx, remoteKey, SpanContext{TraceID: trace, SpanID: span})
}

func newID(bytes int) string {
	b := make([]byte, bytes)
	if _, err := rand.Read(b); err != nil {
		panic("obs: crypto/rand failed: " + err.Error())
	}
	return hex.EncodeToString(b)
}

func validID(s string) bool {
	if len(s) < 2 || len(s) > 64 || len(s)%2 != 0 {
		return false
	}
	_, err := hex.DecodeString(s)
	return err == nil
}

// Observer bundles the two halves of the substrate a session carries: a
// registry for metrics and a tracer for spans. Either half may be nil.
type Observer struct {
	// Reg collects counters, gauges and histograms.
	Reg *Registry
	// Trace records finished spans as JSONL.
	Trace *Tracer
}

// Registry returns the observer's registry; nil-safe (returns nil when
// the observer itself is nil).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Reg
}

// Tracer returns the observer's tracer; nil-safe.
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}
