package obs

import (
	"strings"
	"testing"
)

// TestPrometheusRoundTrip renders a populated registry and feeds the text
// back through the lint parser — the exact pipeline CI runs over live
// daemon scrapes.
func TestPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("pathlog_intake_accepted_total").Add(42)
	r.Gauge("pathlog_intake_queue_depth").Set(3)
	h := r.Histogram("pathlog_replay_run_ns", ExpBuckets(1000, 10, 5))
	h.Observe(1500)
	h.Observe(1500)
	h.Observe(2e9) // overflow

	var buf strings.Builder
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	fams, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("lint failed on own output:\n%s\n%v", text, err)
	}
	c, ok := fams["pathlog_intake_accepted_total"]
	if !ok || c.Type != "counter" || c.Samples["pathlog_intake_accepted_total"] != 42 {
		t.Fatalf("counter family wrong: %+v", c)
	}
	g := fams["pathlog_intake_queue_depth"]
	if g.Type != "gauge" || g.Samples["pathlog_intake_queue_depth"] != 3 {
		t.Fatalf("gauge family wrong: %+v", g)
	}
	hist := fams["pathlog_replay_run_ns"]
	if hist.Type != "histogram" {
		t.Fatalf("histogram family wrong: %+v", hist)
	}
	if hist.Samples[`pathlog_replay_run_ns_bucket{le="+Inf"}`] != 3 {
		t.Fatalf("+Inf bucket wrong: %+v", hist.Samples)
	}
	if hist.Samples[`pathlog_replay_run_ns_bucket{le="10000"}`] != 2 {
		t.Fatalf("cumulative bucket wrong: %+v", hist.Samples)
	}
	if hist.Samples["pathlog_replay_run_ns_count"] != 3 {
		t.Fatalf("_count wrong: %+v", hist.Samples)
	}
}

// TestParsePrometheusRejects pins the lint failures the parser exists to
// catch: each input is subtly broken the way a torn or miscoded scrape
// would be.
func TestParsePrometheusRejects(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE": "orphan_total 3\n",
		"unknown type":        "# TYPE x summary\nx 1\n",
		"bad value":           "# TYPE x counter\nx notanumber\n",
		"duplicate series":    "# TYPE x counter\nx 1\nx 2\n",
		"duplicate family":    "# TYPE x counter\nx 1\n# TYPE x counter\n",
		"histogram without +Inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"10\"} 1\nh_sum 5\nh_count 1\n",
		"decreasing cumulative buckets": "# TYPE h histogram\n" +
			"h_bucket{le=\"10\"} 5\nh_bucket{le=\"20\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"count disagrees with +Inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"10\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 7\n",
		"missing _sum": "# TYPE h histogram\n" +
			"h_bucket{le=\"10\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"sample outside its block": "# TYPE a counter\n# TYPE b counter\na 1\n",
	}
	for name, text := range cases {
		if _, err := ParsePrometheus(strings.NewReader(text)); err == nil {
			t.Errorf("%s: parser accepted broken exposition:\n%s", name, text)
		}
	}
}

// TestParsePrometheusToleratesForeign accepts legal text we don't emit
// ourselves: HELP comments, blank lines, float counters.
func TestParsePrometheusToleratesForeign(t *testing.T) {
	text := "# HELP x something\n# TYPE x counter\n\nx 1.5\n"
	fams, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if fams["x"].Samples["x"] != 1.5 {
		t.Fatalf("parsed: %+v", fams)
	}
}
