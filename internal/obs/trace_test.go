package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestSpanTreeAcrossProcesses simulates the real three-process hop:
// tune starts a root and a child, injects the child into a header,
// a daemon extracts it and starts its own span — every span must share
// the root's trace ID and the daemon span must parent under the
// injected child.
func TestSpanTreeAcrossProcesses(t *testing.T) {
	var tuneOut, daemonOut strings.Builder
	tune := NewTracer(&tuneOut, "tune")
	daemon := NewTracer(&daemonOut, "pathlogd")

	ctx, root := tune.StartSpan(context.Background(), "balance")
	ctx, child := tune.StartSpan(ctx, "publish")
	h := http.Header{}
	Inject(ctx, h)
	if got := h.Get(TraceHeader); got != child.Context().TraceID+"-"+child.Context().SpanID {
		t.Fatalf("header = %q", got)
	}

	remoteCtx := Extract(context.Background(), h)
	_, ingest := daemon.StartSpan(remoteCtx, "ingest")
	ingest.SetAttr("sig", "abc")
	ingest.End()
	child.End()
	root.End()

	if root.Context().TraceID != child.Context().TraceID ||
		child.Context().TraceID != ingest.Context().TraceID {
		t.Fatal("trace IDs diverged across the hop")
	}

	decode := func(s string) []SpanRecord {
		var out []SpanRecord
		sc := bufio.NewScanner(strings.NewReader(s))
		for sc.Scan() {
			var r SpanRecord
			if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
				t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
			}
			out = append(out, r)
		}
		return out
	}
	tuneRecs := decode(tuneOut.String())
	daemonRecs := decode(daemonOut.String())
	if len(tuneRecs) != 2 || len(daemonRecs) != 1 {
		t.Fatalf("records: tune %d daemon %d", len(tuneRecs), len(daemonRecs))
	}
	ing := daemonRecs[0]
	if ing.Parent != child.Context().SpanID {
		t.Fatalf("ingest parent = %q, want %q", ing.Parent, child.Context().SpanID)
	}
	if ing.Proc != "pathlogd" || ing.Name != "ingest" || ing.Attrs["sig"] != "abc" {
		t.Fatalf("ingest record wrong: %+v", ing)
	}
	if ing.DurNS < 0 || ing.StartUnixNS == 0 {
		t.Fatalf("timing not stamped: %+v", ing)
	}
	if tune.Count() != 2 || daemon.Count() != 1 {
		t.Fatalf("counts: %d / %d", tune.Count(), daemon.Count())
	}
}

// TestNilTracerStillPropagates pins the disabled-mode contract: a nil
// tracer mints and propagates IDs (so the processes around it still link
// up) without writing anything.
func TestNilTracerStillPropagates(t *testing.T) {
	var nilTracer *Tracer
	ctx, s := nilTracer.StartSpan(context.Background(), "x")
	if s.Context().TraceID == "" || s.Context().SpanID == "" {
		t.Fatal("nil tracer did not mint IDs")
	}
	h := http.Header{}
	Inject(ctx, h)
	if h.Get(TraceHeader) == "" {
		t.Fatal("nil tracer did not propagate")
	}
	s.SetAttr("k", "v")
	s.End()
	s.End() // double End is safe
	if nilTracer.Count() != 0 {
		t.Fatal("nil tracer counted spans")
	}
	if NewTracer(nil, "x") != nil {
		t.Fatal("NewTracer(nil) should be nil")
	}
}

func TestExtractRejectsMalformed(t *testing.T) {
	for _, v := range []string{"", "no-dash-at-all-zzz", "abc", "xyz-123", "ab-", "-ab", "abc-12"} {
		h := http.Header{}
		if v != "" {
			h.Set(TraceHeader, v)
		}
		ctx := Extract(context.Background(), h)
		if remoteFrom(ctx) != (SpanContext{}) {
			t.Errorf("header %q was accepted", v)
		}
	}
	h := http.Header{}
	h.Set(TraceHeader, "00ff00ff-12ab")
	ctx := Extract(context.Background(), h)
	if sc := remoteFrom(ctx); sc.TraceID != "00ff00ff" || sc.SpanID != "12ab" {
		t.Fatalf("well-formed header rejected: %+v", sc)
	}
	// A span started from the extracted context parents under the remote.
	_, s := (*Tracer)(nil).StartSpan(ctx, "child")
	if s.Context().TraceID != "00ff00ff" || s.parent != "12ab" {
		t.Fatalf("remote parenting wrong: %+v parent=%q", s.Context(), s.parent)
	}
}

func TestObserverNilSafety(t *testing.T) {
	var o *Observer
	if o.Registry() != nil || o.Tracer() != nil {
		t.Fatal("nil observer leaked instruments")
	}
	o = &Observer{Reg: NewRegistry()}
	if o.Registry() == nil || o.Tracer() != nil {
		t.Fatal("observer accessors wrong")
	}
}
