package obs

import (
	"net/http"
	"net/http/pprof"
)

// MountPprof mounts the net/http/pprof surface under /debug/pprof on mux.
// Every daemon wires it behind an opt-in -pprof flag: profiling endpoints
// have no business on an exposed port by default.
func MountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
