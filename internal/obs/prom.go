package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): a # TYPE line per family, cumulative histogram
// buckets with an explicit +Inf edge, and _sum/_count series. Rendering
// only ever reads the snapshot, so a scrape can never observe a torn
// counter set — consistency was decided when the snapshot was taken.
func WritePrometheus(w io.Writer, s Snapshot) error {
	bw := bufio.NewWriter(w)
	for _, c := range s.Counters {
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", c.Name, c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", g.Name, g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(bw, "# TYPE %s histogram\n", h.Name)
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", h.Name, formatBound(bound), cum)
		}
		cum += h.Counts[len(h.Bounds)]
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", h.Name, cum)
		fmt.Fprintf(bw, "%s_sum %s\n", h.Name, strconv.FormatFloat(h.Sum, 'g', -1, 64))
		fmt.Fprintf(bw, "%s_count %d\n", h.Name, h.Count)
	}
	return bw.Flush()
}

func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// PromFamily is one metric family recovered by ParsePrometheus.
type PromFamily struct {
	// Name is the family name from its # TYPE line.
	Name string
	// Type is "counter", "gauge" or "histogram".
	Type string
	// Samples maps each full series name (including any {le=...} suffix)
	// to its value.
	Samples map[string]float64
}

// ParsePrometheus parses and lints the text exposition format produced by
// WritePrometheus. It is the checker CI runs over live daemon scrapes, so
// it errors on everything a real scraper would reject: samples with no
// preceding # TYPE, invalid names, unparsable values, histograms whose
// cumulative buckets decrease, miss the +Inf edge, or disagree with their
// _count series.
func ParsePrometheus(r io.Reader) (map[string]PromFamily, error) {
	families := make(map[string]PromFamily)
	var cur string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(text)
			if len(fields) == 4 && fields[1] == "TYPE" {
				name, typ := fields[2], fields[3]
				if !validName(name) {
					return nil, fmt.Errorf("line %d: invalid family name %q", line, name)
				}
				switch typ {
				case "counter", "gauge", "histogram":
				default:
					return nil, fmt.Errorf("line %d: unknown family type %q", line, typ)
				}
				if _, dup := families[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate # TYPE for %q", line, name)
				}
				families[name] = PromFamily{Name: name, Type: typ, Samples: map[string]float64{}}
				cur = name
			}
			continue // other comments are legal and ignored
		}
		sp := strings.LastIndexByte(text, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("line %d: sample %q has no value", line, text)
		}
		series, valText := text[:sp], text[sp+1:]
		val, err := strconv.ParseFloat(valText, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad sample value %q", line, valText)
		}
		base := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				return nil, fmt.Errorf("line %d: unterminated label set in %q", line, series)
			}
			base = series[:i]
		}
		fam := base
		if cur != "" && families[cur].Type == "histogram" {
			if t := strings.TrimSuffix(base, "_bucket"); t != base {
				fam = t
			} else if t := strings.TrimSuffix(base, "_sum"); t != base {
				fam = t
			} else if t := strings.TrimSuffix(base, "_count"); t != base {
				fam = t
			}
		}
		f, ok := families[fam]
		if !ok || fam != cur {
			return nil, fmt.Errorf("line %d: sample %q outside its # TYPE block", line, series)
		}
		if _, dup := f.Samples[series]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %q", line, series)
		}
		f.Samples[series] = val
		families[fam] = f
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for name, f := range families {
		if f.Type != "histogram" {
			continue
		}
		if err := lintHistogram(name, f); err != nil {
			return nil, err
		}
	}
	return families, nil
}

// lintHistogram enforces the histogram-shape invariants a scraper relies
// on: at least one bucket, a +Inf edge, non-decreasing cumulative counts
// in bound order, and _count equal to the +Inf bucket.
func lintHistogram(name string, f PromFamily) error {
	type edge struct {
		bound float64
		count float64
	}
	var edges []edge
	var inf *float64
	for series, val := range f.Samples {
		rest, ok := strings.CutPrefix(series, name+"_bucket{le=\"")
		if !ok {
			continue
		}
		le := strings.TrimSuffix(rest, "\"}")
		if le == "+Inf" {
			v := val
			inf = &v
			continue
		}
		b, err := strconv.ParseFloat(le, 64)
		if err != nil {
			return fmt.Errorf("histogram %s: bad le bound %q", name, le)
		}
		edges = append(edges, edge{b, val})
	}
	if inf == nil {
		return fmt.Errorf("histogram %s: no +Inf bucket", name)
	}
	if len(edges) == 0 {
		return fmt.Errorf("histogram %s: no finite buckets", name)
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].bound < edges[j].bound })
	prev := 0.0
	for _, e := range edges {
		if e.count < prev {
			return fmt.Errorf("histogram %s: cumulative bucket count decreases at le=%g", name, e.bound)
		}
		prev = e.count
	}
	if *inf < prev {
		return fmt.Errorf("histogram %s: +Inf bucket %g below le=%g bucket %g", name, *inf, edges[len(edges)-1].bound, prev)
	}
	count, ok := f.Samples[name+"_count"]
	if !ok {
		return fmt.Errorf("histogram %s: missing _count series", name)
	}
	if count != *inf {
		return fmt.Errorf("histogram %s: _count %g != +Inf bucket %g", name, count, *inf)
	}
	if _, ok := f.Samples[name+"_sum"]; !ok {
		return fmt.Errorf("histogram %s: missing _sum series", name)
	}
	return nil
}
