package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestEventWireShape pins the JSONL schema: the fleet's original journal
// fields keep their names, empties are omitted, and the trace linkage is
// additive.
func TestEventWireShape(t *testing.T) {
	full := Event{Kind: "steal", Worker: "http://w1", Shard: "s0", Attempt: 2,
		Err: "boom", MS: 1.5, Trace: "t1", Span: "sp1"}
	data, err := json.Marshal(full)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"kind":"steal","worker":"http://w1","shard":"s0","attempt":2,"err":"boom","ms":1.5,"trace":"t1","span":"sp1"}`
	if string(data) != want {
		t.Fatalf("wire shape drifted:\n got %s\nwant %s", data, want)
	}
	bare, _ := json.Marshal(Event{Kind: "dispatch"})
	if string(bare) != `{"kind":"dispatch"}` {
		t.Fatalf("empties not omitted: %s", bare)
	}
}

// TestEventSinkConcurrent drives the sink from many goroutines and
// checks every line decodes and all events arrive; -race guards the
// encoder sharing.
func TestEventSinkConcurrent(t *testing.T) {
	var buf strings.Builder
	var mu sync.Mutex // strings.Builder itself is not goroutine-safe
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.WriteString(string(p))
	})
	sink := NewEventSink(w)
	const writers, each = 8, 200
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < each; j++ {
				sink.Emit(Event{Kind: "dispatch", Attempt: j + 1})
			}
		}(i)
	}
	wg.Wait()
	if sink.Count() != writers*each {
		t.Fatalf("count = %d, want %d", sink.Count(), writers*each)
	}
	lines := 0
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d corrupt: %q", lines, sc.Text())
		}
		lines++
	}
	if lines != writers*each {
		t.Fatalf("lines = %d, want %d", lines, writers*each)
	}
}

func TestNilEventSink(t *testing.T) {
	var s *EventSink
	s.Emit(Event{Kind: "x"})
	if s.Count() != 0 {
		t.Fatal("nil sink counted")
	}
	if NewEventSink(nil) != nil {
		t.Fatal("NewEventSink(nil) should be nil")
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
