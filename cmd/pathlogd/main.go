// Command pathlogd is the developer site's fleet intake daemon: an HTTP
// service user sites POST stamped-only reference envelopes to (the version-3
// format cmd/record -ref writes), closing the paper's deployment loop
// without raw inputs ever leaving a site.
//
// Every envelope is validated against the plan store's trust boundary — an
// unknown fingerprint stamp or a wrong program hash is refused by name —
// then deduplicated by corpus content signature: duplicates cost one stored
// report plus a counter bump. Every accepted/duplicate/refused event lands
// in an append-only journal that a restart replays, so counters survive a
// crash bit-for-bit. The daemon also serves GET /plan/<proghash> (the
// program's current chain-head plan) so sites self-update to newly
// published generations, plus /metrics and /healthz.
//
// SIGTERM (or SIGINT) drains gracefully: in-flight reports finish and are
// journaled before the process exits.
//
// Usage:
//
//	pathlogd -store ./planstore -dir ./intake -listen 127.0.0.1:8747
//	tune -scenario userver-exp3 -store ./planstore -corpus ./intake -intake
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pathlog"
	"pathlog/internal/obs"
)

func main() {
	var (
		dir      = flag.String("dir", "", "intake directory (journal + stored report buckets)")
		storeDir = flag.String("store", "", "plan store directory stamps are validated against")
		listen   = flag.String("listen", "127.0.0.1:8747", "listen address")
		queue    = flag.Int("queue", 0, "ingest queue bound (0 = default); a full queue answers 429")
		workers  = flag.Int("workers", 0, "ingest workers draining the queue (0 = default)")
		maxBody  = flag.Int64("max-body", 0, "report body cap in bytes (0 = default 1 MiB)")
		burst    = flag.Int("rate-burst", 0, "per-signature token-bucket burst (0 = rate limiting off)")
		rate     = flag.Float64("rate-per-second", 0, "per-signature token refill rate")
		drain    = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget on SIGTERM")
		trace    = flag.String("trace", "", "append finished spans as JSONL to this file (empty = tracing off)")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof")
	)
	flag.Parse()
	if *dir == "" || *storeDir == "" {
		fmt.Fprintln(os.Stderr, "pathlogd: both -dir and -store are required")
		flag.Usage()
		os.Exit(2)
	}
	st, err := pathlog.OpenPlanStore(*storeDir)
	if err != nil {
		fatal(err)
	}
	observer := &obs.Observer{Reg: obs.NewRegistry()}
	if *trace != "" {
		f, err := os.OpenFile(*trace, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		observer.Trace = obs.NewTracer(f, "pathlogd")
	}
	srv, err := pathlog.NewIntake(pathlog.IntakeConfig{
		Dir:           *dir,
		Store:         st,
		QueueSize:     *queue,
		Workers:       *workers,
		MaxBody:       *maxBody,
		RateBurst:     *burst,
		RatePerSecond: *rate,
		Obs:           observer,
		Pprof:         *pprofOn,
	})
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	m := srv.Metrics()
	fmt.Printf("pathlogd: listening on %s (store %s, intake %s)\n", ln.Addr(), *storeDir, *dir)
	fmt.Printf("pathlogd: journal replayed: %d accepted (%d stored, %d deduped), %d refused\n",
		m.Accepted, m.Stored, m.Deduped, m.Refused)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	case <-ctx.Done():
		fmt.Println("pathlogd: draining…")
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(dctx); err != nil {
			fatal(err)
		}
		<-done
	}
	m = srv.Metrics()
	fmt.Printf("pathlogd: stopped: %d accepted (%d stored, %d deduped), %d refused, %d throttled, journal %d record(s)\n",
		m.Accepted, m.Stored, m.Deduped, m.Refused, m.Throttled, m.JournalRecords)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pathlogd:", err)
	os.Exit(1)
}
