// Command shardworkerd serves the shard worker protocol over HTTP — the
// remote half of the replay fleet. It is the same deliberately dumb worker
// core as cmd/shardworker (no plan store, no weights, no refinement
// decisions), wrapped in a daemon so a fleet.RemoteRunner can POST shards
// to a pool of hosts:
//
//	POST /shard   — one JSON ShardRequest in, one JSON ShardResponse out.
//	                Reports may arrive as envelope paths (shared
//	                filesystem) or inline version-2 envelopes (none). A
//	                propagated X-Pathlog-Trace header parents this
//	                daemon's worker.shard span under the dispatcher's.
//	GET  /healthz — liveness plus the inflight/served counters the
//	                runner's probes and the chaos harness read.
//	GET  /metrics — shard counters and the shard-execution histogram,
//	                Prometheus text by default (JSON behind Accept:
//	                application/json).
//
// -trace appends finished spans as JSONL; -pprof mounts net/http/pprof.
//
// A shard whose connection drops is abandoned mid-search: the request
// context cancels the replay engine, so a parent that cancelled a stolen
// duplicate does not leave this daemon burning CPU on the loser.
//
// Usage:
//
//	shardworkerd -listen 127.0.0.1:0
//
// The daemon prints "listening on http://<addr>" on startup (the actual
// port when :0 was asked for) and drains inflight shards on SIGTERM.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"pathlog/internal/corpus"
	"pathlog/internal/fleet"
	"pathlog/internal/obs"
)

// server is the daemon's handler state: the shared worker core plus the
// counters /healthz exposes.
type server struct {
	core     fleet.WorkerCore
	obs      *obs.Observer
	delay    time.Duration
	maxBody  int64
	inflight atomic.Int64
	served   atomic.Int64
}

// handleShard serves POST /shard.
func (s *server) handleShard(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	defer s.served.Add(1)
	var req corpus.ShardRequest
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeResponse(w, http.StatusBadRequest, corpus.ShardResponse{
			Version: corpus.ProtocolVersion,
			Error:   fmt.Sprintf("decode request: %v", err),
		})
		return
	}
	// The chaos knob: hold the shard before replaying so tests get a wide,
	// observable window (inflight is already up) to kill or steal against.
	if s.delay > 0 {
		select {
		case <-r.Context().Done():
			return
		case <-time.After(s.delay):
		}
	}
	// A propagated trace header parents this daemon's worker.shard span
	// under the dispatching runner's span, across the process boundary.
	ctx := obs.Extract(r.Context(), r.Header)
	resp := s.core.Execute(ctx, req)
	writeResponse(w, http.StatusOK, resp)
}

// handleMetrics serves GET /metrics: the worker core's registry in
// Prometheus text, or as JSON behind Accept: application/json.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	obs.ServeMetrics(w, r, s.obs.Reg.Snapshot())
}

// handleHealthz serves GET /healthz.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"ok":true,"protocol":%d,"inflight":%d,"served":%d}`+"\n",
		corpus.ProtocolVersion, s.inflight.Load(), s.served.Load())
}

// writeResponse sends one ShardResponse as JSON.
func writeResponse(w http.ResponseWriter, status int, resp corpus.ShardResponse) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		fmt.Fprintln(os.Stderr, "shardworkerd: encode response:", err)
	}
}

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:0",
			"address to serve on (port 0 picks a free port; the chosen address is printed)")
		delay = flag.Duration("delay", 0,
			"hold each shard this long before replaying (widens the chaos/steal window in tests)")
		maxBody = flag.Int64("max-body", 256<<20,
			"largest accepted request body in bytes")
		drain = flag.Duration("drain-timeout", 10*time.Second,
			"how long SIGTERM waits for inflight shards before closing connections")
		trace = flag.String("trace", "",
			"append finished spans as JSONL to this file (empty = tracing off)")
		pprofOn = flag.Bool("pprof", false,
			"mount net/http/pprof under /debug/pprof")
	)
	flag.Parse()

	observer := &obs.Observer{Reg: obs.NewRegistry()}
	if *trace != "" {
		f, err := os.OpenFile(*trace, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shardworkerd:", err)
			os.Exit(1)
		}
		defer f.Close()
		observer.Trace = obs.NewTracer(f, "shardworkerd")
	}
	srv := &server{obs: observer, delay: *delay, maxBody: *maxBody}
	srv.core.Obs = observer
	srv.core.Register()
	mux := http.NewServeMux()
	mux.HandleFunc("/shard", srv.handleShard)
	mux.HandleFunc("/healthz", srv.handleHealthz)
	mux.HandleFunc("/metrics", srv.handleMetrics)
	if *pprofOn {
		obs.MountPprof(mux)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shardworkerd:", err)
		os.Exit(1)
	}
	// The parent (or a test) scrapes this line for the picked port.
	fmt.Printf("listening on http://%s\n", ln.Addr())

	httpSrv := &http.Server{Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		done <- httpSrv.Shutdown(sctx)
	}()
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "shardworkerd:", err)
		os.Exit(1)
	}
	if err := <-done; err != nil {
		fmt.Fprintln(os.Stderr, "shardworkerd: drain:", err)
		os.Exit(1)
	}
}
