// Command tune drives the adaptive refinement loop end to end: starting
// from a cheap instrumentation strategy, it records the named scenario's
// crashing run, replays it, and — while the replay budget is not met —
// promotes the branches the search blames into the next plan generation
// and goes again (the paper's deploy → too slow → instrument more →
// redeploy workflow, automated).
//
// With -store, the loop runs against a plan store: every generation's plan
// is retained under its fingerprint as it is deployed, each generation's
// measured (overhead, replay) point is appended to the store's history for
// this scenario, and a later tune over the same store resumes from the
// retained chain head instead of redeploying generation 0. cmd/analyze
// -store then folds the measured history into its frontier sweep.
//
// With -corpus, tune refines against a whole directory of bug reports
// instead of the latest crash: the reports are deduplicated and weighted
// (frequency × recency), replayed over -shards shards (out-of-process with
// -shard-cmd, or over a remote worker fleet with -workers host:port,...),
// and one weighted refinement step is derived from the merged
// attribution — corpus-wide blowup branches promoted, branches whose bits
// never constrained any report's search demoted. Redeploy the printed plan
// and run tune -corpus on the fresh reports to confirm the demotion by
// measurement.
//
// With -corpus -intake, the directory is a pathlogd intake directory
// instead of loose report files: members come from the program's
// newest-generation report bucket, with each stored report's dedupe
// counter as its frequency — a crash POSTed a thousand times weighs like a
// thousand files without a thousand files existing.
//
// With -trace-out, the whole run is traced: a root "tune" span opens one
// trace ID that every balance generation parents under, and the
// X-Pathlog-Trace header carries it to the -workers shard daemons and the
// -report-to intake daemon — one invocation, one span tree across three
// processes. Each daemon appends its own spans via its -trace flag;
// concatenating the JSONL files reassembles the tree.
//
// Usage:
//
//	tune -scenario userver-exp3 -strategy dynamic -target-runs 200
//	tune -scenario userver-exp3 -trajectory-out traj.json -plan-out final.plan.json
//	tune -scenario userver-exp3 -store ./planstore -target-runs 200
//	tune -scenario userver-exp3 -store ./planstore -corpus ./reports -shards 4 -plan-out next.plan.json
//	tune -scenario userver-exp3 -store ./planstore -corpus ./intake -intake -shards 4
//	tune -scenario userver-exp3 -store ./planstore -corpus ./reports -workers 10.0.0.1:7070,10.0.0.2:7070
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"pathlog"
	"pathlog/internal/apps"
	"pathlog/internal/corpus"
	"pathlog/internal/instrument"
	"pathlog/internal/obs"
	"pathlog/internal/replay"
	"pathlog/internal/static"
)

func main() {
	var (
		scenario = flag.String("scenario", "", "scenario name (cmd/record -list shows names)")
		strategy = flag.String("strategy", "dynamic",
			"starting strategy: none, dynamic, static, static-residue, dynamic+static, all")
		dynRuns = flag.Int("dynamic-runs", 10,
			"concolic analysis budget for the starting plan (low coverage makes the loop earn its keep)")
		targetRuns = flag.Int("target-runs", 0,
			"replay-run target; 0 means 'reproduce within the replay budget at all'")
		targetTime = flag.Duration("target-time", 0, "replay wall-clock target (0 = none)")
		maxGens    = flag.Int("max-generations", pathlog.DefaultMaxGenerations,
			"refinement steps before giving up")
		ceiling = flag.Float64("overhead-ceiling", 0,
			"stop before deploying a plan estimated above this many bits/run (0 = none)")
		topK = flag.Int("topk", pathlog.DefaultRefineTopK,
			"blowup branches promoted per generation")
		maxRuns = flag.Int("replay-runs", 2000, "per-generation replay run budget")
		budget  = flag.Duration("replay-budget", 30*time.Second,
			"per-generation replay wall-clock budget")
		replayWorkers = flag.Int("replay-workers", 1,
			"concurrent replay workers per search (1 = the paper's serial depth-first)")
		fleetWorkers = flag.String("workers", "",
			"comma-separated shard worker daemons (host:port, cmd/shardworkerd) to fan corpus shards out over; conflicts with -shard-cmd")
		trajOut = flag.String("trajectory-out", "",
			"write the per-generation trajectory JSON to this file")
		planOut = flag.String("plan-out", "", "save the final generation's plan to this file")
		profOut = flag.String("profile-out", "",
			"write the final generation's replay search profile JSON to this file")
		storeDir = flag.String("store", "",
			"plan store directory: retain every generation and append measured points")
		corpusDir = flag.String("corpus", "",
			"refine against a directory of bug reports (record ×N) instead of the latest crash: one weighted corpus refinement step")
		corpusShards = flag.Int("shards", 1,
			"shards the corpus replay fans out over (with -corpus)")
		shardCmd = flag.String("shard-cmd", "",
			"shard worker binary (cmd/shardworker) for out-of-process corpus shards; empty = in-process")
		intakeMode = flag.Bool("intake", false,
			"treat -corpus as a pathlogd intake directory: members come from the newest-generation report bucket, dedupe counters feed member frequency")
		traceOut = flag.String("trace-out", "",
			"append this run's spans as JSONL to this file (empty = tracing off); the whole run shares one trace ID that -workers daemons and -report-to intake inherit")
		reportTo = flag.String("report-to", "",
			"with -corpus: POST every ingested report file to this pathlogd base URL before replaying, propagating the run's trace header")
	)
	flag.Parse()
	if *scenario == "" {
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	s, err := apps.ScenarioByName(*scenario)
	if err != nil {
		fatal(err)
	}
	strat, err := parseStrategy(*strategy)
	if err != nil {
		fatal(err)
	}
	an := apps.AnalysisScenarioFor(*scenario, s)
	sessOpts := []pathlog.Option{
		pathlog.WithAnalysisSpec(an.Spec),
		pathlog.WithDynamicBudget(*dynRuns, 0),
		pathlog.WithStaticOptions(static.Options{LibAsSymbolic: true}),
		pathlog.WithSyscallLog(),
		pathlog.WithStrategy(strat),
		pathlog.WithReplayBudget(*maxRuns, *budget),
		pathlog.WithReplayWorkers(*replayWorkers),
	}
	if *storeDir != "" {
		sessOpts = append(sessOpts, pathlog.WithPlanStore(*storeDir))
	}
	observer := &obs.Observer{Reg: obs.NewRegistry()}
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		observer.Trace = obs.NewTracer(f, "tune")
	}
	sessOpts = append(sessOpts, pathlog.WithObserver(observer))
	sess := pathlog.SessionOf(s, sessOpts...)

	// The root span: every balance generation — and, over the wire, every
	// worker shard and intake ingest — parents under this one trace.
	ctx, root := observer.Tracer().StartSpan(ctx, "tune")
	root.SetAttr("scenario", *scenario)

	var hosts []string
	if *fleetWorkers != "" {
		if *shardCmd != "" {
			fatal(fmt.Errorf("-workers and -shard-cmd are two transports for the same shards — pick one"))
		}
		for _, h := range strings.Split(*fleetWorkers, ",") {
			if h = strings.TrimSpace(h); h != "" {
				hosts = append(hosts, h)
			}
		}
		if len(hosts) == 0 {
			fatal(fmt.Errorf("-workers names no hosts"))
		}
	}

	if *corpusDir != "" {
		ok := tuneCorpus(ctx, sess, observer, s.Name, *corpusDir, *intakeMode, *reportTo, *corpusShards, *shardCmd, hosts,
			*topK, *maxRuns, *budget, *replayWorkers, *planOut, *profOut)
		root.End()
		if !ok {
			os.Exit(1)
		}
		return
	}
	if *intakeMode {
		fatal(fmt.Errorf("-intake needs -corpus (the intake directory)"))
	}
	if *reportTo != "" {
		fatal(fmt.Errorf("-report-to forwards corpus reports — it needs -corpus"))
	}
	if len(hosts) > 0 {
		fatal(fmt.Errorf("-workers fans out corpus shards — it needs -corpus"))
	}

	fmt.Printf("tuning %s from strategy %s (target: %s)\n",
		*scenario, strat.Name(), describeTarget(*targetRuns, *targetTime))
	fmt.Printf("  %-4s %-44s %6s %10s %12s %10s %6s\n",
		"gen", "strategy", "locs", "bits/run", "replay runs", "time", "repro")
	tr, err := sess.AutoBalance(ctx, nil, pathlog.BalanceOptions{
		TargetReplayRuns: *targetRuns,
		TargetReplayTime: *targetTime,
		MaxGenerations:   *maxGens,
		OverheadCeiling:  *ceiling,
		TopK:             *topK,
		OnGeneration: func(pt pathlog.BalancePoint) {
			fmt.Printf("  %-4d %-44s %6d %10d %12d %10s %6v\n",
				pt.Generation, truncate(pt.Plan.Strategy, 44), pt.Plan.NumInstrumented(),
				pt.OverheadBits, pt.ReplayRuns, pt.ReplayTime.Round(time.Millisecond),
				pt.Reproduced)
		},
	})
	if err != nil {
		fatal(err)
	}
	if tr.Converged {
		fmt.Printf("converged: %s\n", tr.Reason)
	} else {
		fmt.Printf("NOT converged: %s\n", tr.Reason)
	}
	final := tr.Final()
	if final == nil {
		fatal(fmt.Errorf("empty trajectory"))
	}
	fmt.Printf("final plan: generation %d, %d locations, fingerprint %s\n",
		final.Plan.Generation, final.Plan.NumInstrumented(), final.Plan.Fingerprint())
	if *storeDir != "" {
		st, err := sess.PlanStore()
		if err != nil {
			fatal(err)
		}
		rep, err := st.Scan()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("store %s: %d plan(s) retained, %d measured point(s), %d damaged entr(ies)\n",
			*storeDir, rep.Plans, rep.MeasuredPoints, len(rep.Damaged))
	}

	if *trajOut != "" {
		if err := tr.Save(*trajOut); err != nil {
			fatal(err)
		}
		fmt.Printf("trajectory written to %s\n", *trajOut)
	}
	if *planOut != "" {
		if err := final.Plan.Save(*planOut); err != nil {
			fatal(err)
		}
		fmt.Printf("plan written to %s\n", *planOut)
	}
	if *profOut != "" && final.Result != nil && final.Result.Profile != nil {
		if err := final.Result.Profile.Save(*profOut); err != nil {
			fatal(err)
		}
		fmt.Printf("search profile written to %s\n", *profOut)
	}
	root.End()
	if !tr.Converged {
		os.Exit(1)
	}
}

// tuneCorpus runs one weighted corpus refinement step: ingest the report
// directory, replay the whole population over the shard configuration,
// and derive the next plan generation — corpus-wide blowup branches
// promoted, proven-redundant branches demoted. Measured verification of
// the demotion happens at the next deployment: record fresh reports under
// the printed plan and run tune -corpus again. It returns false when the
// population is not yet within the replay budget (the scripted-loop
// "redeploy and iterate" signal).
func tuneCorpus(ctx context.Context, sess *pathlog.Session, observer *obs.Observer, scenario, dir string, intakeMode bool, reportTo string, shards int, shardCmd string, hosts []string,
	topK, maxRuns int, budget time.Duration, workers int, planOut, profOut string) bool {
	var c *pathlog.Corpus
	var err error
	if intakeMode {
		var info *pathlog.IntakeBucketInfo
		c, info, err = pathlog.IngestIntake(dir, pathlog.ProgramHash(sess.Program()), pathlog.CorpusIngestOptions{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("intake bucket: plan %s generation %d — %d stored report(s) standing for %d accepted\n",
			info.Fingerprint, info.Generation, info.Stored, info.Accepted)
	} else {
		c, err = pathlog.IngestCorpus(dir, pathlog.CorpusIngestOptions{})
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("corpus %s: %d member(s) from %s\n", c.Identity(), len(c.Reports), dir)
	fmt.Printf("  %-34s %5s %7s %10s %s\n", "signature", "count", "weight", "bits", "newest")
	for _, rep := range c.Reports {
		fmt.Printf("  %-34s %5d %7.3f %10d %s\n",
			rep.Signature, rep.Count, rep.Weight, rep.Rec.Trace.Len(),
			rep.Newest.Format(time.RFC3339))
	}
	if reportTo != "" {
		if err := publishCorpus(ctx, observer, reportTo, c); err != nil {
			fatal(err)
		}
	}
	var runner pathlog.CorpusRunner
	if shardCmd != "" {
		runner = &corpus.SubprocessRunner{
			Command:  []string{shardCmd},
			Scenario: scenario,
			Opts: replay.Options{
				MaxRuns:    maxRuns,
				TimeBudget: budget,
				Workers:    workers,
			},
		}
	}
	if len(hosts) > 0 {
		// The session defaults to one shard per worker when -shards is
		// not raised above 1; announce the effective fan-out.
		eff := shards
		if eff <= 1 {
			eff = len(hosts)
		}
		fmt.Printf("fanning %d shard(s) out over %d remote worker(s): %s\n",
			eff, len(hosts), strings.Join(hosts, ", "))
	}
	ref, err := sess.RefineCorpus(ctx, c, pathlog.CorpusOptions{
		Shards: shards, Runner: runner, Workers: hosts, TopK: topK,
	})
	if err != nil {
		fatal(err)
	}
	out := ref.Outcome
	fmt.Printf("corpus replay (%d shard(s)): %d/%d reproduced, weighted mean %.1f runs (max %d), mean %.0fms\n",
		out.Shards, out.Reproduced, out.Members, out.MeanRuns, out.MaxRuns, out.MeanWallMS)
	fmt.Printf("promoted %d blowup branch(es): %s\n", len(ref.Promoted), branchIDs(ref.Promoted))
	fmt.Printf("demoted %d redundant branch(es): %s\n", len(ref.Demoted), branchIDs(ref.Demoted))
	if ref.Plan.Fingerprint() == ref.Base.Fingerprint() {
		fmt.Println("fixed point: the corpus profile changes nothing — the plan already fits the population")
	} else {
		fmt.Printf("next generation %d: %d locations, ~%.0f bits/run estimated, fingerprint %s\n",
			ref.Plan.Generation, ref.Plan.NumInstrumented(), ref.Plan.EstimatedOverhead(), ref.Plan.Fingerprint())
		fmt.Println("redeploy it (record -plan / -store) and tune -corpus on the fresh reports to confirm the demotion by measurement")
	}
	if planOut != "" {
		if err := ref.Plan.Save(planOut); err != nil {
			fatal(err)
		}
		fmt.Printf("plan written to %s\n", planOut)
	}
	if profOut != "" && out.Profile != nil {
		if err := out.Profile.Save(profOut); err != nil {
			fatal(err)
		}
		fmt.Printf("merged corpus profile written to %s\n", profOut)
	}
	if out.Reproduced != out.Members {
		// Mirror tune's convergence exit: nonzero while the population is
		// not yet within the replay budget, so scripted loops know to
		// redeploy and iterate.
		fmt.Printf("corpus not yet within the replay budget (%d/%d reproduced) — redeploy and iterate\n",
			out.Reproduced, out.Members)
		return false
	}
	fmt.Println("corpus replays within the budget under the current plan")
	return true
}

// publishCorpus mirrors the ingested report files into a pathlogd intake
// over HTTP: every duplicate file is POSTed as-is to <base>/report with
// the run's trace propagated, so the daemon's intake.ingest spans join
// this tune invocation's trace.
func publishCorpus(ctx context.Context, observer *obs.Observer, base string, c *pathlog.Corpus) error {
	pctx, span := observer.Tracer().StartSpan(ctx, "corpus.publish")
	defer span.End()
	base = strings.TrimRight(base, "/")
	client := &http.Client{Timeout: 30 * time.Second}
	posted := 0
	for _, rep := range c.Reports {
		for _, path := range rep.Paths {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			req, err := http.NewRequestWithContext(pctx, http.MethodPost, base+"/report", bytes.NewReader(data))
			if err != nil {
				return err
			}
			req.Header.Set("Content-Type", "application/json")
			obs.Inject(pctx, req.Header)
			resp, err := client.Do(req)
			if err != nil {
				return fmt.Errorf("report %s to %s: %w", filepath.Base(path), base, err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
				return fmt.Errorf("report %s: %s answered %s", filepath.Base(path), base, resp.Status)
			}
			posted++
		}
	}
	span.SetAttr("reports", fmt.Sprint(posted))
	fmt.Printf("published %d report file(s) to %s\n", posted, base)
	return nil
}

// branchIDs renders a branch set for the transcript.
func branchIDs(ids []pathlog.BranchID) string {
	if len(ids) == 0 {
		return "none"
	}
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("b%d", id)
	}
	return strings.Join(parts, ",")
}

// parseStrategy maps the CLI spelling to a starting strategy.
func parseStrategy(s string) (pathlog.Strategy, error) {
	switch s {
	case "none":
		return pathlog.None(), nil
	case "dynamic":
		return pathlog.Dynamic(), nil
	case "static":
		return pathlog.Static(), nil
	case "static-residue":
		return pathlog.StaticResidue(), nil
	case "dynamic+static":
		return pathlog.Union(pathlog.Dynamic(), pathlog.StaticResidue()), nil
	case "all":
		return pathlog.All(), nil
	}
	if m, err := instrument.ParseMethod(s); err == nil {
		return pathlog.StrategyForMethod(m), nil
	}
	return nil, fmt.Errorf("unknown strategy %q", s)
}

func describeTarget(runs int, d time.Duration) string {
	switch {
	case runs > 0 && d > 0:
		return fmt.Sprintf("<= %d runs and <= %s", runs, d)
	case runs > 0:
		return fmt.Sprintf("<= %d runs", runs)
	case d > 0:
		return fmt.Sprintf("<= %s", d)
	}
	return "reproduce within the replay budget"
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tune:", err)
	os.Exit(1)
}
