// Command analyze runs the branch analyses over a named scenario and prints
// the classification of every branch location: the dynamic label, the static
// label, and the instrumentation decision each method would take.
//
// -refine closes the loop from the developer site: given a saved bug
// report, it replays the recording, attributes the search cost per branch,
// and prints (and with -plan-out saves) the next plan generation — the
// recording's plan plus the top blowup branches.
//
// With -store, the analysis runs against a plan store: the -frontier sweep
// folds the store's measured history for this scenario back in (measured
// points marked, estimated-vs-measured drift rendered), a -refine'd plan
// is retained in the store as it is derived, and the store's health (plans
// retained, measured points, damaged entries) is reported.
//
// Usage:
//
//	analyze -scenario userver-exp1 -dynamic-runs 60
//	analyze -scenario userver-exp3 -refine bug.report -plan-out gen1.plan.json
//	analyze -scenario userver-exp3 -frontier -store ./planstore
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pathlog"
	"pathlog/internal/apps"
	"pathlog/internal/concolic"
	"pathlog/internal/instrument"
)

func main() {
	var (
		scenario = flag.String("scenario", "", "scenario name (cmd/record -list shows names)")
		dynRuns  = flag.Int("dynamic-runs", 200, "concolic analysis budget (the coverage knob)")
		libSym   = flag.Bool("lib-as-symbolic", false,
			"static analysis skips library bodies and labels all library branches symbolic (§5.3)")
		verbose  = flag.Bool("v", false, "print every branch location")
		method   = flag.String("method", "dynamic+static", "method for -plan-out")
		planOut  = flag.String("plan-out", "", "save the -method plan to this file")
		frontier = flag.Bool("frontier", false,
			"sweep the default strategy set and print the overhead/debug-time Pareto frontier")
		refine = flag.String("refine", "",
			"replay this bug report and derive the next plan generation from the search's blame")
		topK = flag.Int("topk", pathlog.DefaultRefineTopK,
			"blowup branches promoted by -refine")
		refineRuns   = flag.Int("refine-runs", 2000, "replay run budget for -refine")
		refineBudget = flag.Duration("refine-budget", 30*time.Second,
			"replay wall-clock budget for -refine")
		refineWorkers = flag.Int("refine-workers", 1,
			"concurrent replay workers for -refine (1 = serial depth-first)")
		storeDir = flag.String("store", "",
			"plan store directory: fold measured history into -frontier, retain -refine results")
	)
	flag.Parse()
	if *scenario == "" {
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	s, err := apps.ScenarioByName(*scenario)
	if err != nil {
		fatal(err)
	}
	an := apps.AnalysisScenarioFor(*scenario, s)
	sessOpts := []pathlog.Option{
		pathlog.WithAnalysisSpec(an.Spec),
		pathlog.WithDynamicBudget(*dynRuns, 0),
		pathlog.WithStaticOptions(pathlog.StaticOptions{LibAsSymbolic: *libSym}),
		pathlog.WithSyscallLog(),
	}
	if *storeDir != "" {
		sessOpts = append(sessOpts, pathlog.WithPlanStore(*storeDir))
	}
	sess := pathlog.SessionOf(s, sessOpts...)

	if *storeDir != "" {
		// Scan the store up front, independent of the session: a damaged
		// index that would refuse session operations still gets reported
		// here instead of hiding the whole store from the operator.
		st, err := pathlog.OpenPlanStore(*storeDir)
		if err != nil {
			fatal(err)
		}
		rep, err := st.Scan()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("store %s: %d plan(s) retained, %d measured point(s), %d damaged entr(ies)\n",
			*storeDir, rep.Plans, rep.MeasuredPoints, len(rep.Damaged))
		for _, d := range rep.Damaged {
			fmt.Printf("  damaged: %s: %v\n", d.Path, d.Err)
		}
	}

	in, err := sess.Analyze(ctx)
	if err != nil {
		fatal(err)
	}
	dyn, stat := in.Dynamic, in.Static

	total := len(s.Prog.Branches)
	fmt.Printf("program: %d branch locations\n", total)
	fmt.Printf("dynamic analysis: %d runs, coverage %.0f%%: %d symbolic, %d concrete, %d unvisited\n",
		dyn.Runs, 100*dyn.Coverage(total),
		dyn.CountLabel(concolic.Symbolic), dyn.CountLabel(concolic.Concrete),
		dyn.CountLabel(concolic.Unvisited))
	fmt.Printf("static analysis: %d symbolic (%d contexts, %d passes)\n",
		stat.CountSymbolic(), stat.Contexts, stat.Passes)

	fmt.Println("\ninstrumentation decisions:")
	plans := map[string]*pathlog.Plan{}
	for _, m := range pathlog.Methods {
		plan, err := sess.PlanFor(ctx, m)
		if err != nil {
			fatal(err)
		}
		plans[m.String()] = plan
		fmt.Printf("  %-15s %4d locations (%5.1f%%)  ~%.0f bits/run, ~%.0f replay runs\n",
			m, plan.NumInstrumented(),
			100*float64(plan.NumInstrumented())/float64(total),
			plan.EstimatedOverhead(), plan.EstimatedReplayRuns())
	}

	if *frontier {
		points, err := sess.Frontier(ctx)
		if err != nil {
			fatal(err)
		}
		title := "cost model"
		if *storeDir != "" {
			title = "cost model + measured history from " + *storeDir
		}
		fmt.Printf("\noverhead/debug-time Pareto frontier (%s):\n", title)
		fmt.Printf("  %-40s %6s %12s %12s %9s %11s  %s\n",
			"strategy", "locs", "bits/run", "replay runs", "measured", "drift runs", "fingerprint")
		for _, pt := range points {
			measured, drift := "", "-"
			if pt.Measured {
				measured = "yes"
				drift = fmt.Sprintf("%+.1f", pt.ReplayRunsDrift())
			}
			fmt.Printf("  %-40s %6d %12.1f %12.1f %9s %11s  %s\n",
				pt.Strategy, pt.Plan.NumInstrumented(), pt.Overhead, pt.ReplayRuns,
				measured, drift, pt.Plan.Fingerprint())
		}
	}

	if *refine != "" {
		var rec *pathlog.Recording
		if *storeDir != "" {
			// A store-backed report may be stamped-only: the session resolves
			// the retained plan by fingerprint (with its store cross-checks),
			// then the result validates like any embedded plan.
			if rec, err = pathlog.LoadRecording(*refine); err != nil {
				fatal(err)
			}
			if rec, err = sess.ResolveRecording(rec); err != nil {
				fatal(err)
			}
			if err := rec.Validate(s.Prog); err != nil {
				fatal(err)
			}
		} else if rec, err = pathlog.LoadRecordingFor(*refine, s.Prog); err != nil {
			fatal(err)
		}
		fmt.Printf("\nrefining plan %s (generation %d, %d locations) from %s\n",
			rec.Fingerprint, rec.Plan.Generation, rec.Plan.NumInstrumented(), *refine)
		rsess := pathlog.SessionOf(s,
			pathlog.WithReplayBudget(*refineRuns, *refineBudget),
			pathlog.WithReplayWorkers(*refineWorkers))
		res, err := rsess.Replay(ctx, rec)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("replay: reproduced=%v in %d runs (%s)\n",
			res.Reproduced, res.Runs, res.Elapsed.Round(time.Millisecond))
		k := *topK
		if k <= 0 {
			k = pathlog.DefaultRefineTopK
		}
		refined, err := sess.RefineWith(ctx, rec, res, k)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("generation %d plan %s: %d locations (%+d), ~%.0f bits/run, ~%.0f replay runs (calibrated)\n",
			refined.Generation, refined.Fingerprint(), refined.NumInstrumented(),
			refined.NumInstrumented()-rec.Plan.NumInstrumented(),
			refined.EstimatedOverhead(), refined.EstimatedReplayRuns())
		for _, id := range res.Profile.TopBlowup(k, rec.Plan.Instrumented) {
			b := s.Prog.Branches[id]
			bc := res.Profile.Branch(id)
			fmt.Printf("  promoted b%-5d %-30s forks=%d aborted=%d solver=%d\n",
				id, fmt.Sprintf("%s@%s:%d", b.Func, b.Pos.Unit, b.Pos.Line),
				bc.Forks, bc.AbortedRuns, bc.SolverCalls)
		}
		if *planOut != "" {
			if err := refined.Save(*planOut); err != nil {
				fatal(err)
			}
			fmt.Printf("refined plan written to %s\n", *planOut)
		}
	} else if *planOut != "" {
		m, err := instrument.ParseMethod(*method)
		if err != nil {
			fatal(err)
		}
		plan, err := sess.PlanFor(ctx, m)
		if err != nil {
			fatal(err)
		}
		if err := plan.Save(*planOut); err != nil {
			fatal(err)
		}
		fmt.Printf("\nplan %s written to %s (fingerprint %s)\n",
			m, *planOut, plan.Fingerprint())
	}

	if *verbose {
		fmt.Println("\nper-branch classification:")
		header := fmt.Sprintf("  %-6s %-6s %-34s %-9s %-8s %s",
			"id", "kind", "location", "dynamic", "static", "methods")
		fmt.Println(header)
		fmt.Println("  " + strings.Repeat("-", len(header)-2))
		for _, b := range s.Prog.Branches {
			statLabel := "concrete"
			if stat.SymbolicBranches[b.ID] {
				statLabel = "symbolic"
			}
			var methods []string
			for _, m := range pathlog.Methods {
				if plans[m.String()].Instrumented[b.ID] {
					methods = append(methods, shortName(m))
				}
			}
			fmt.Printf("  b%-5d %-6s %-34s %-9s %-8s %s\n",
				b.ID, b.Kind, fmt.Sprintf("%s@%s:%d", b.Func, b.Pos.Unit, b.Pos.Line),
				dyn.Labels[b.ID], statLabel, strings.Join(methods, ","))
		}
	}
}

func shortName(m instrument.Method) string {
	switch m {
	case instrument.MethodDynamic:
		return "D"
	case instrument.MethodStatic:
		return "S"
	case instrument.MethodDynamicStatic:
		return "DS"
	case instrument.MethodAll:
		return "A"
	}
	return "?"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "analyze:", err)
	os.Exit(1)
}
