// Command replay performs the developer-site half of the workflow: it loads
// a bug report produced by cmd/record and reproduces the crash, printing the
// reconstructed bug-triggering inputs. Ctrl-C cancels the search cleanly;
// -workers fans the search out over concurrent workers.
//
// The search plan comes from the recording envelope itself — the plan the
// user site actually recorded under, validated against the program (branch
// IDs and program hash must match, and the envelope's fingerprint stamp
// must agree with its plan). A stamped-only reference report (cmd/record
// -store) carries no plan at all: pass -store and the exact retained plan
// generation is resolved from the plan store by the report's fingerprint
// stamp — a stamp matching no retained plan is refused by name. To search
// under a different plan, pass an explicit -force-plan file; there is no
// silent way to disagree with the recording.
//
// -json prints one machine-readable result object to stdout instead of the
// human transcript (the harness and CI consume it; nothing scrapes text),
// and -profile-out writes the search's per-branch cost attribution for the
// refinement loop (cmd/analyze -refine, cmd/tune).
//
// Usage:
//
//	replay -scenario paste -in bug.report -workers 4
//	replay -scenario paste -in bug.report -store ./planstore
//	replay -scenario paste -in bug.report -force-plan other.plan.json
//	replay -scenario paste -in bug.report -json -profile-out search.profile.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"pathlog"
	"pathlog/internal/apps"
	"pathlog/internal/instrument"
	"pathlog/internal/replay"
	"pathlog/internal/solver"
)

func main() {
	var (
		scenario = flag.String("scenario", "", "scenario name (must match the recording)")
		in       = flag.String("in", "bug.report", "bug report path")
		maxRuns  = flag.Int("max-runs", 4000, "replay run budget")
		budget   = flag.Duration("budget", 60*time.Second,
			"wall-clock budget (the paper's 1-hour cutoff, scaled)")
		workers = flag.Int("workers", runtime.NumCPU(),
			"concurrent replay workers (1 = the paper's serial depth-first search)")
		noSyslog = flag.Bool("ignore-syslog", false,
			"discard the syscall log and use the symbolic models of §3.3")
		forcePlan = flag.String("force-plan", "",
			"replay under this plan file instead of the recording's own plan (explicit override)")
		jsonOut = flag.Bool("json", false,
			"print one machine-readable JSON result object to stdout instead of the transcript")
		profileOut = flag.String("profile-out", "",
			"write the search's per-branch cost attribution (refinement input) to this file")
		storeDir = flag.String("store", "",
			"resolve a stamped-only report's retained plan from this plan store")
	)
	flag.Parse()
	if *scenario == "" {
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	s, err := apps.ScenarioByName(*scenario)
	if err != nil {
		fatal(err)
	}
	// Load structurally first: a stamped-only report (no embedded plan)
	// needs the store before any program validation can happen, and an
	// explicit -force-plan replaces the envelope's plan anyway. The plan
	// that ends up attached is always validated against the program below.
	rec, err2 := replay.LoadRecording(*in)
	if err2 != nil {
		fatal(err2)
	}
	if rec.Plan == nil && *forcePlan == "" && *storeDir == "" {
		fatal(fmt.Errorf("report %s carries no plan, only fingerprint stamp %s — pass -store <dir> so the retained plan can be resolved",
			*in, rec.Fingerprint))
	}
	if *forcePlan == "" && *storeDir == "" {
		// The envelope's plan is validated against the program up front:
		// wrong-program or tampered reports fail here, not as a nonsense
		// search.
		if err := rec.Validate(s.Prog); err != nil {
			fatal(err)
		}
	}
	sessOpts := []pathlog.Option{
		pathlog.WithReplayBudget(*maxRuns, *budget),
		pathlog.WithReplayWorkers(*workers),
	}
	if *storeDir != "" {
		sessOpts = append(sessOpts, pathlog.WithPlanStore(*storeDir))
	}
	sess := pathlog.SessionOf(s, sessOpts...)
	if rec.Plan == nil && *forcePlan == "" {
		// A stamped-only reference report: the session resolves the retained
		// plan generation from the store by the stamp — refused by name when
		// the stamp matches nothing or the report's program hash disagrees
		// with the retained plan's. Replay re-validates the result as usual.
		resolved, err := sess.ResolveRecording(rec)
		if err != nil {
			fatal(err)
		}
		rec = resolved
		if !*jsonOut {
			fmt.Printf("resolved plan %s (generation %d, strategy %s) from store %s\n",
				rec.Fingerprint, rec.Plan.Generation, planLabel(rec.Plan), *storeDir)
		}
	}
	if *forcePlan != "" {
		plan, err := instrument.LoadPlan(*forcePlan)
		if err != nil {
			fatal(err)
		}
		if err := plan.ValidateForProgram(s.Prog); err != nil {
			fatal(err)
		}
		if !*jsonOut {
			fmt.Printf("OVERRIDE: searching under plan %s (%s), not the recording's %s\n",
				*forcePlan, plan.Fingerprint(), rec.Fingerprint)
		}
		rec.Plan = plan
		rec.Fingerprint = plan.Fingerprint()
	}
	if !*jsonOut {
		fmt.Printf("report: %s (plan %s), %d instrumented locations, %d trace bits, crash at %s\n",
			planLabel(rec.Plan), rec.Fingerprint, rec.Plan.NumInstrumented(),
			rec.Trace.Len(), rec.Crash.Site())
	}
	if *noSyslog {
		rec.SysLog = nil
	}

	res, err := sess.Replay(ctx, rec)
	if err != nil {
		fatal(err)
	}
	if *profileOut != "" && res.Profile != nil {
		if err := res.Profile.Save(*profileOut); err != nil {
			fatal(err)
		}
		if !*jsonOut {
			fmt.Printf("search profile written to %s\n", *profileOut)
		}
	}
	verified := res.Reproduced && sess.Verify(res.InputBytes, rec.Crash)
	if *jsonOut {
		if err := json.NewEncoder(os.Stdout).Encode(resultJSON(rec, res, verified)); err != nil {
			fatal(err)
		}
		if !res.Reproduced {
			os.Exit(1)
		}
		return
	}
	if !res.Reproduced {
		why := "budget exhausted — the paper's inf"
		if res.Cancelled {
			why = "cancelled"
		}
		fmt.Printf("NOT reproduced: %d runs, %s elapsed (%s)\n",
			res.Runs, res.Elapsed.Round(time.Millisecond), why)
		os.Exit(1)
	}
	fmt.Printf("reproduced in %d runs (%s, %d workers); %d aborted paths; solver: %d calls (%d sat)\n",
		res.Runs, res.Elapsed.Round(time.Millisecond), res.Workers, res.Aborts,
		res.SolverStats.Calls, res.SolverStats.Sat)
	fmt.Printf("symbolic branches on the bug path: %d locations logged (%d execs), %d not logged (%d execs)\n",
		res.SymLoggedLocs, res.SymLoggedExecs, res.SymNotLoggedLocs, res.SymNotLoggedExecs)

	if verified {
		fmt.Println("verified: the reconstructed input crashes at the recorded site")
	} else {
		fmt.Println("WARNING: reconstructed input failed verification")
	}
	fmt.Println("reconstructed inputs (not the user's bytes — an equivalent activating set):")
	for stream, bytes := range res.InputBytes {
		fmt.Printf("  %-14s %q\n", stream, printable(bytes))
	}
}

// replayJSON is the -json result envelope: everything the transcript says,
// as one stable object.
type replayJSON struct {
	Reproduced      bool              `json:"reproduced"`
	Verified        bool              `json:"verified"`
	TimedOut        bool              `json:"timed_out"`
	Cancelled       bool              `json:"cancelled"`
	Runs            int               `json:"runs"`
	Aborts          int               `json:"aborts"`
	Workers         int               `json:"workers"`
	WallMS          int64             `json:"wall_ms"`
	PendingPeak     int               `json:"pending_peak"`
	PlanStrategy    string            `json:"plan_strategy"`
	PlanFingerprint string            `json:"plan_fingerprint"`
	PlanGeneration  int               `json:"plan_generation"`
	Instrumented    int               `json:"instrumented_locations"`
	TraceBits       int64             `json:"trace_bits"`
	SymLogged       [2]int64          `json:"sym_logged_locs_execs"`
	SymNotLogged    [2]int64          `json:"sym_not_logged_locs_execs"`
	Solver          solver.Stats      `json:"solver"`
	Profile         *profileSummary   `json:"profile,omitempty"`
	Inputs          map[string]string `json:"inputs,omitempty"`
}

// profileSummary condenses the search profile for the JSON envelope; the
// full attribution goes to -profile-out.
type profileSummary struct {
	ChargedBranches int            `json:"charged_branches"`
	TopBlowup       []blowupBranch `json:"top_blowup,omitempty"`
	// Disagreements counts log bits across all branches that contradicted
	// a run's own direction (case-2b/3b) — the bits that constrained this
	// search; Demotable lists instrumented branches with consumed bits and
	// zero disagreements, the corpus loop's shrink candidates.
	Disagreements int64             `json:"disagreements"`
	Demotable     []demotableBranch `json:"demotable,omitempty"`
}

type blowupBranch struct {
	Branch      int   `json:"branch"`
	Forks       int64 `json:"forks"`
	AbortedRuns int64 `json:"aborted_runs"`
	WastedRuns  int64 `json:"wasted_runs"`
	SolverCalls int64 `json:"solver_calls"`
}

// demotableBranch is one instrumented branch whose bits the search proved
// redundant: every consumed bit agreed with the run's own direction.
type demotableBranch struct {
	Branch      int   `json:"branch"`
	LoggedExecs int64 `json:"logged_execs"`
}

func resultJSON(rec *replay.Recording, res *pathlog.ReplayResult, verified bool) replayJSON {
	out := replayJSON{
		Reproduced:      res.Reproduced,
		Verified:        verified,
		TimedOut:        res.TimedOut,
		Cancelled:       res.Cancelled,
		Runs:            res.Runs,
		Aborts:          res.Aborts,
		Workers:         res.Workers,
		WallMS:          res.Elapsed.Milliseconds(),
		PendingPeak:     res.PendingPeak,
		PlanStrategy:    planLabel(rec.Plan),
		PlanFingerprint: rec.Fingerprint,
		PlanGeneration:  rec.Plan.Generation,
		Instrumented:    rec.Plan.NumInstrumented(),
		TraceBits:       rec.Trace.Len(),
		SymLogged:       [2]int64{int64(res.SymLoggedLocs), res.SymLoggedExecs},
		SymNotLogged:    [2]int64{int64(res.SymNotLoggedLocs), res.SymNotLoggedExecs},
		Solver:          res.SolverStats,
	}
	if res.Reproduced {
		out.Inputs = make(map[string]string, len(res.InputBytes))
		for stream, bytes := range res.InputBytes {
			out.Inputs[stream] = printable(bytes)
		}
	}
	if p := res.Profile; p != nil {
		sum := &profileSummary{ChargedBranches: len(p.Branches)}
		for _, id := range p.TopBlowup(5, rec.Plan.Instrumented) {
			bc := p.Branch(id)
			sum.TopBlowup = append(sum.TopBlowup, blowupBranch{
				Branch:      int(id),
				Forks:       bc.Forks,
				AbortedRuns: bc.AbortedRuns,
				WastedRuns:  bc.WastedRuns,
				SolverCalls: bc.SolverCalls,
			})
		}
		for _, bc := range p.Branches {
			sum.Disagreements += bc.Disagreements
		}
		for _, id := range p.Demotable(rec.Plan.Instrumented) {
			sum.Demotable = append(sum.Demotable, demotableBranch{
				Branch:      int(id),
				LoggedExecs: p.Branch(id).LoggedExecs,
			})
		}
		out.Profile = sum
	}
	return out
}

// planLabel prefers the strategy provenance, falling back to the method tag
// of version-1 envelopes.
func planLabel(p *pathlog.Plan) string {
	if p.Strategy != "" {
		return p.Strategy
	}
	return p.Method.String()
}

func printable(b []byte) string {
	end := len(b)
	for end > 0 && b[end-1] == 0 {
		end--
	}
	out := make([]byte, end)
	for i := 0; i < end; i++ {
		c := b[i]
		if c == '\r' || c == '\n' || c == '\t' || (c >= 32 && c < 127) {
			out[i] = c
		} else {
			out[i] = '.'
		}
	}
	return string(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "replay:", err)
	os.Exit(1)
}
