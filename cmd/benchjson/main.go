// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so benchmark numbers become a machine-readable artifact a
// perf trajectory can be tracked over (CI commits BENCH_replay.json per
// run; diffs show regressions).
//
// It reads bench output from stdin or from the files named as arguments and
// writes one JSON object: the environment lines go test prints (goos,
// goarch, pkg, cpu) plus one entry per benchmark line with its iteration
// count and every reported metric keyed by unit.
//
// With -baseline it additionally gates on a committed document: for every
// benchmark present in both files it compares the -gate metric (default
// ns/replay-run) and exits nonzero when the fresh value regresses by more
// than -max-regress percent, which is how CI's bench-smoke job fails a PR
// that slows the replay engine down.
//
// Usage:
//
//	go test -bench ReplayWorkers -benchtime 1x . | benchjson -o BENCH_replay.json
//	benchjson bench.txt
//	benchjson -baseline BENCH_replay.json -max-regress 20 bench.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with any -GOMAXPROCS suffix preserved
	// (e.g. "BenchmarkReplayWorkers/workers=2-8").
	Name string `json:"name"`
	// Iterations is b.N — how many times the body ran.
	Iterations int64 `json:"iterations"`
	// Metrics maps each reported unit to its value ("ns/op",
	// "replay-runs", "B/op", ...).
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the whole converted document.
type Doc struct {
	// Env holds the context lines go test prints before the benchmarks
	// (goos, goarch, pkg, cpu).
	Env map[string]string `json:"env,omitempty"`
	// Benchmarks lists every parsed benchmark line in input order.
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "committed baseline JSON to gate against")
	gate := flag.String("gate", "ns/replay-run", "metric the -baseline gate compares")
	maxRegress := flag.Float64("max-regress", 20, "max allowed -gate regression in percent")
	flag.Parse()

	doc := Doc{Env: map[string]string{}}
	readAll := func(r io.Reader) error { return parse(r, &doc) }
	if flag.NArg() == 0 {
		if err := readAll(os.Stdin); err != nil {
			fatal(err)
		}
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		err = readAll(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	if len(doc.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found"))
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	if *baseline != "" {
		if err := compare(&doc, *baseline, *gate, *maxRegress); err != nil {
			fatal(err)
		}
	}
}

// compare gates doc against the committed baseline document: every benchmark
// present in both must not regress the gate metric by more than maxRegress
// percent. Lower is better for the gated metric (it is a time-per-work
// unit). A baseline entry missing the metric, or a benchmark only on one
// side, is skipped — the gate tightens as baselines are regenerated, it
// never blocks adding benchmarks.
func compare(doc *Doc, path, metric string, maxRegress float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Doc
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	baseBy := make(map[string]Result, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	compared, failed := 0, 0
	for _, fresh := range doc.Benchmarks {
		b, ok := baseBy[fresh.Name]
		if !ok {
			continue
		}
		was, ok1 := b.Metrics[metric]
		now, ok2 := fresh.Metrics[metric]
		if !ok1 || !ok2 || was <= 0 {
			continue
		}
		compared++
		pct := (now - was) / was * 100
		status := "ok"
		if pct > maxRegress {
			status = "REGRESSION"
			failed++
		}
		fmt.Fprintf(os.Stderr, "benchjson: %-40s %s %.0f -> %.0f (%+.1f%%) %s\n",
			fresh.Name, metric, was, now, pct, status)
	}
	if compared == 0 {
		return fmt.Errorf("baseline %s shares no %q metrics with the fresh run", path, metric)
	}
	if failed > 0 {
		return fmt.Errorf("%d benchmark(s) regressed %s by more than %.0f%% over %s",
			failed, metric, maxRegress, path)
	}
	return nil
}

// parse scans go test bench output: "key: value" context lines and
// "BenchmarkName<TAB>N<TAB>value unit[<TAB>value unit...]" result lines.
// Everything else (PASS, ok, test logs) is ignored.
func parse(r io.Reader, doc *Doc) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
				if v, ok := strings.CutPrefix(line, key+": "); ok {
					doc.Env[key] = strings.TrimSpace(v)
				}
			}
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return fmt.Errorf("benchjson: bad value %q in %q", fields[i], line)
			}
			res.Metrics[fields[i+1]] = v
		}
		doc.Benchmarks = append(doc.Benchmarks, res)
	}
	return sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
