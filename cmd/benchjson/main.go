// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so benchmark numbers become a machine-readable artifact a
// perf trajectory can be tracked over (CI commits BENCH_replay.json per
// run; diffs show regressions).
//
// It reads bench output from stdin or from the files named as arguments and
// writes one JSON object: the environment lines go test prints (goos,
// goarch, pkg, cpu) plus one entry per benchmark with its iteration count
// and every reported metric keyed by unit.
//
// Repeated runs of the same benchmark (`go test -count N`) are collapsed to
// the best run — the one with the lowest -gate metric — because on a noisy
// shared machine the minimum over repetitions estimates the true cost far
// more stably than any single run. -min-runs makes the de-noising mandatory:
// a benchmark that appears fewer times than required fails the conversion
// loudly rather than producing a one-sample artifact that the regression
// gate then trusts. -min-iterations likewise rejects runs whose b.N fell
// below the expected floor (a sign the harness was cut short).
//
// With -baseline it additionally gates on a committed document: for every
// benchmark present in both files it compares the -gate metric (default
// ns/replay-run) and exits nonzero when the fresh value regresses by more
// than -max-regress percent, which is how CI's bench-smoke job fails a PR
// that slows the replay engine down.
//
// Usage:
//
//	go test -bench ReplayWorkers -benchtime 1x -count 3 . | benchjson -min-runs 3 -o BENCH_replay.json
//	benchjson bench.txt
//	benchjson -baseline BENCH_replay.json -max-regress 20 bench.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with any -GOMAXPROCS suffix preserved
	// (e.g. "BenchmarkReplayWorkers/workers=2-8").
	Name string `json:"name"`
	// Iterations is b.N — how many times the body ran.
	Iterations int64 `json:"iterations"`
	// Runs is how many repetitions of this benchmark the input held; the
	// entry keeps the best of them (lowest gate metric).
	Runs int `json:"runs,omitempty"`
	// Metrics maps each reported unit to its value ("ns/op",
	// "replay-runs", "B/op", ...).
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the whole converted document.
type Doc struct {
	// Env holds the context lines go test prints before the benchmarks
	// (goos, goarch, pkg, cpu).
	Env map[string]string `json:"env,omitempty"`
	// Benchmarks lists every parsed benchmark line in input order.
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "committed baseline JSON to gate against")
	gate := flag.String("gate", "ns/replay-run", "metric the -baseline gate compares")
	maxRegress := flag.Float64("max-regress", 20, "max allowed -gate regression in percent")
	minRuns := flag.Int("min-runs", 1, "required repetitions per benchmark (use with go test -count)")
	minIters := flag.Int64("min-iterations", 1, "required b.N floor per benchmark run")
	flag.Parse()

	doc := Doc{Env: map[string]string{}}
	readAll := func(r io.Reader) error { return parse(r, &doc) }
	if flag.NArg() == 0 {
		if err := readAll(os.Stdin); err != nil {
			fatal(err)
		}
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		err = readAll(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	if len(doc.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found"))
	}
	if err := collapse(&doc, *gate, *minRuns, *minIters); err != nil {
		fatal(err)
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	if *baseline != "" {
		if err := compare(&doc, *baseline, *gate, *maxRegress); err != nil {
			fatal(err)
		}
	}
}

// collapse de-noises repeated benchmark runs: entries with the same name are
// reduced to the one with the lowest gate metric (falling back to ns/op when
// the gate metric is absent), tagged with the repetition count. It errors if
// any benchmark ran fewer than minRuns times or with fewer than minIters
// iterations — silent under-measurement is exactly what the flags exist to
// catch.
func collapse(doc *Doc, gate string, minRuns int, minIters int64) error {
	pick := func(r Result) (float64, bool) {
		if v, ok := r.Metrics[gate]; ok {
			return v, true
		}
		v, ok := r.Metrics["ns/op"]
		return v, ok
	}
	byName := make(map[string]int)
	var outList []Result
	for _, fresh := range doc.Benchmarks {
		if fresh.Iterations < minIters {
			return fmt.Errorf("%s ran %d iteration(s), need at least %d",
				fresh.Name, fresh.Iterations, minIters)
		}
		i, seen := byName[fresh.Name]
		if !seen {
			fresh.Runs = 1
			byName[fresh.Name] = len(outList)
			outList = append(outList, fresh)
			continue
		}
		best := &outList[i]
		best.Runs++
		bv, bok := pick(*best)
		fv, fok := pick(fresh)
		if !bok || !fok {
			return fmt.Errorf("%s: repeated runs but no %q or ns/op metric to rank them", fresh.Name, gate)
		}
		if fv < bv {
			runs := best.Runs
			*best = fresh
			best.Runs = runs
		}
	}
	for _, r := range outList {
		if r.Runs < minRuns {
			return fmt.Errorf("%s has %d run(s), need at least %d (go test -count)",
				r.Name, r.Runs, minRuns)
		}
	}
	doc.Benchmarks = outList
	return nil
}

// compare gates doc against the committed baseline document: every benchmark
// present in both must not regress the gate metric by more than maxRegress
// percent. Lower is better for the gated metric (it is a time-per-work
// unit). A baseline entry missing the metric, or a benchmark only on one
// side, is skipped — the gate tightens as baselines are regenerated, it
// never blocks adding benchmarks.
func compare(doc *Doc, path, metric string, maxRegress float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Doc
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	baseBy := make(map[string]Result, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	compared, failed := 0, 0
	for _, fresh := range doc.Benchmarks {
		b, ok := baseBy[fresh.Name]
		if !ok {
			continue
		}
		was, ok1 := b.Metrics[metric]
		now, ok2 := fresh.Metrics[metric]
		if !ok1 || !ok2 || was <= 0 {
			continue
		}
		compared++
		pct := (now - was) / was * 100
		status := "ok"
		if pct > maxRegress {
			status = "REGRESSION"
			failed++
		}
		fmt.Fprintf(os.Stderr, "benchjson: %-40s %s %.0f -> %.0f (%+.1f%%) %s\n",
			fresh.Name, metric, was, now, pct, status)
	}
	if compared == 0 {
		return fmt.Errorf("baseline %s shares no %q metrics with the fresh run", path, metric)
	}
	if failed > 0 {
		return fmt.Errorf("%d benchmark(s) regressed %s by more than %.0f%% over %s",
			failed, metric, maxRegress, path)
	}
	return nil
}

// parse scans go test bench output: "key: value" context lines and
// "BenchmarkName<TAB>N<TAB>value unit[<TAB>value unit...]" result lines.
// Everything else (PASS, ok, test logs) is ignored.
func parse(r io.Reader, doc *Doc) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
				if v, ok := strings.CutPrefix(line, key+": "); ok {
					doc.Env[key] = strings.TrimSpace(v)
				}
			}
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return fmt.Errorf("benchjson: bad value %q in %q", fields[i], line)
			}
			res.Metrics[fields[i+1]] = v
		}
		doc.Benchmarks = append(doc.Benchmarks, res)
	}
	return sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
