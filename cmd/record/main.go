// Command record performs the user-site half of the workflow: it analyzes a
// named benchmark scenario, instruments it with the chosen method, runs the
// user input to the crash, and writes the bug report (branch bitvector +
// optional syscall results + crash site) to a file.
//
// With -store, the deployed plan is retained in the plan store under its
// fingerprint and the report is written as a stamped-only reference
// envelope: no branch set ships with the report at all — cmd/replay
// resolves the exact retained plan generation from the same store by the
// stamp. This is the deployment lifecycle; without -store the full
// envelope (plan embedded) is written as before.
//
// Usage:
//
//	record -scenario paste -method dynamic+static -o bug.report
//	record -scenario paste -store ./planstore -o bug.report
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"pathlog"
	"pathlog/internal/apps"
	"pathlog/internal/instrument"
)

func main() {
	var (
		scenario = flag.String("scenario", "", "scenario name (see -list)")
		method   = flag.String("method", "dynamic+static",
			"instrumentation method: dynamic, static, dynamic+static, all")
		out      = flag.String("o", "bug.report", "output report path")
		dynRuns  = flag.Int("dynamic-runs", 400, "concolic analysis budget")
		syscalls = flag.Bool("log-syscalls", true, "log select()/read() results")
		list     = flag.Bool("list", false, "list scenario names")
		planIn   = flag.String("plan", "",
			"instrument with this saved plan file instead of deriving one (skips analysis)")
		planOut = flag.String("plan-out", "",
			"save the plan used for this recording (ship it to the developer site)")
		storeDir = flag.String("store", "",
			"retain the deployed plan in this plan store and write a stamped-only reference report")
	)
	flag.Parse()
	if *list {
		for _, n := range apps.ScenarioNames() {
			fmt.Println(n)
		}
		return
	}
	if *scenario == "" {
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	s, err := apps.ScenarioByName(*scenario)
	if err != nil {
		fatal(err)
	}
	m, err := instrument.ParseMethod(*method)
	if err != nil {
		fatal(err)
	}

	an := apps.AnalysisScenarioFor(*scenario, s)
	opts := []pathlog.Option{
		pathlog.WithMethod(m),
		pathlog.WithAnalysisSpec(an.Spec),
		pathlog.WithDynamicBudget(*dynRuns, 0),
		pathlog.WithStaticOptions(pathlog.StaticOptions{
			LibAsSymbolic: strings.HasPrefix(*scenario, "userver"),
		}),
	}
	if *syscalls {
		opts = append(opts, pathlog.WithSyscallLog())
	}
	if *storeDir != "" {
		opts = append(opts, pathlog.WithPlanStore(*storeDir))
	}
	sess := pathlog.SessionOf(s, opts...)

	var plan *pathlog.Plan
	if *planIn != "" {
		// A saved plan carries its own branch set and fingerprint; it must
		// fit this program, and no analysis is needed.
		plan, err = pathlog.LoadPlan(*planIn)
		if err != nil {
			fatal(err)
		}
		if err := plan.ValidateForProgram(s.Prog); err != nil {
			fatal(err)
		}
	} else if plan, err = sess.Plan(ctx); err != nil {
		fatal(err)
	}
	label := plan.Strategy
	if label == "" {
		label = m.String()
	}
	fmt.Printf("plan: %s instruments %d of %d branch locations (fingerprint %s)\n",
		label, plan.NumInstrumented(), len(s.Prog.Branches), plan.Fingerprint())
	if plan.Cost.Modeled {
		fmt.Printf("cost model: ~%.0f logged bits/run, ~%.0f estimated replay runs\n",
			plan.EstimatedOverhead(), plan.EstimatedReplayRuns())
	}
	if *planOut != "" {
		if err := plan.Save(*planOut); err != nil {
			fatal(err)
		}
		fmt.Printf("plan written to %s\n", *planOut)
	}

	rec, stats, err := sess.RecordWith(ctx, plan, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("user run: %d steps, %d branch executions, %d bits logged (%d flushes)\n",
		stats.Steps, stats.BranchExecs, stats.TraceBits, stats.Flushes)
	if rec == nil {
		fmt.Println("the user run did not crash; no report written")
		return
	}
	fmt.Printf("crash: %s\n", rec.Crash.Site())
	if *storeDir != "" {
		// The plan was retained in the store by the record step itself; the
		// report needs only the stamp.
		if err := rec.SaveRef(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("plan retained in store %s; stamped-only bug report written to %s (trace %d bytes, syslog %d bytes) — no plan, no input bytes\n",
			*storeDir, *out, rec.Trace.SizeBytes(), stats.SyslogBytes)
		fmt.Printf("replay with: replay -scenario %s -in %s -store %s\n", *scenario, *out, *storeDir)
		return
	}
	if err := rec.Save(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("bug report written to %s (trace %d bytes, syslog %d bytes) — no input bytes included\n",
		*out, rec.Trace.SizeBytes(), stats.SyslogBytes)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "record:", err)
	os.Exit(1)
}
