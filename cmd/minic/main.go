// Command minic runs a MiniC program under the simulated kernel.
//
// Usage:
//
//	minic [-lib file.mc]... [-file path=hostfile]... [-disasm] [-fusestats] prog.mc [args...]
//
// Program arguments after the source file become argv; -file mounts host
// files into the simulated filesystem. -disasm prints the compiled register-IR
// listing (blocks, instructions, branch-site annotations, fused-constituent
// comments, constant pools) instead of running the program; -fusestats prints
// a per-opcode tally of the superinstructions fusion emitted.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"pathlog/internal/apps"
	"pathlog/internal/ir"
	"pathlog/internal/lang"
	"pathlog/internal/oskernel"
	"pathlog/internal/vm"
)

type multiFlag []string

// String implements flag.Value.
func (m *multiFlag) String() string { return strings.Join(*m, ",") }

// Set implements flag.Value.
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var libs, files multiFlag
	var maxSteps int64
	var withULib, disasm, fusestats bool
	flag.Var(&libs, "lib", "additional library unit (may repeat)")
	flag.Var(&files, "file", "mount host file: simpath=hostpath (may repeat)")
	flag.Int64Var(&maxSteps, "max-steps", 0, "execution step budget (0 = default)")
	flag.BoolVar(&withULib, "ulib", true, "link the bundled ulib library")
	flag.BoolVar(&disasm, "disasm", false, "print the compiled register-IR listing and exit")
	flag.BoolVar(&fusestats, "fusestats", false, "print per-opcode superinstruction fusion counts and exit")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: minic [flags] prog.mc [args...]")
		os.Exit(2)
	}

	var units []*lang.Unit
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	app, err := lang.ParseUnit(flag.Arg(0), lang.RegionApp, string(src))
	if err != nil {
		fatal(err)
	}
	units = append(units, app)
	for _, lib := range libs {
		lsrc, err := os.ReadFile(lib)
		if err != nil {
			fatal(err)
		}
		lu, err := lang.ParseUnit(lib, lang.RegionLib, string(lsrc))
		if err != nil {
			fatal(err)
		}
		units = append(units, lu)
	}
	if withULib {
		units = append(units, bundledULib())
	}
	prog, err := lang.Link(units)
	if err != nil {
		fatal(err)
	}

	if disasm || fusestats {
		compiled, err := ir.Compile(prog)
		if err != nil {
			fatal(err)
		}
		if disasm {
			os.Stdout.WriteString(compiled.Disasm())
		}
		if fusestats {
			st := compiled.FuseStats()
			ops := make([]string, 0, len(st))
			total := 0
			for op, n := range st {
				ops = append(ops, op)
				total += n
			}
			sort.Strings(ops)
			fmt.Printf("fused superinstructions: %d\n", total)
			for _, op := range ops {
				fmt.Printf("  %-10s %d\n", op, st[op])
			}
		}
		return
	}

	cfg := oskernel.Config{Files: map[string][]byte{}}
	for _, a := range flag.Args()[1:] {
		cfg.Args = append(cfg.Args, []byte(a))
	}
	for _, f := range files {
		parts := strings.SplitN(f, "=", 2)
		if len(parts) != 2 {
			fatal(fmt.Errorf("bad -file %q, want simpath=hostpath", f))
		}
		data, err := os.ReadFile(parts[1])
		if err != nil {
			fatal(err)
		}
		cfg.Files[parts[0]] = data
	}

	kern := oskernel.New(cfg)
	res, err := vm.New(prog, vm.Options{Kernel: kern, MaxSteps: maxSteps}).Run()
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(res.Stdout)
	switch {
	case res.Crashed:
		fmt.Fprintf(os.Stderr, "minic: program crashed: %s\n", res.Crash.Site())
		os.Exit(139)
	case res.BudgetExceeded:
		fmt.Fprintln(os.Stderr, "minic: step budget exceeded")
		os.Exit(124)
	default:
		os.Exit(int(res.Exit))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minic:", err)
	os.Exit(1)
}

// bundledULib returns the ulib unit shipped with the repository.
func bundledULib() *lang.Unit {
	return lang.MustParse("ulib.mc", lang.RegionLib, apps.ULibSource)
}
