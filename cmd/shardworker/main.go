// Command shardworker is the out-of-process half of the corpus's sharded
// replay: it reads one JSON ShardRequest from stdin — a scenario name, a
// list of recording envelope paths and the replay bounds — replays each
// report in order, and writes one JSON ShardResponse to stdout with the
// per-report search results and plan-fingerprint-stamped profiles.
//
// The worker is deliberately dumb: it holds no plan store (the parent
// ships resolved version-2 envelopes with the plan embedded), applies no
// weights (weighting happens at the parent's verifying merge point), and
// makes no refinement decisions. Anything that goes wrong is reported in
// the response's error field and as a nonzero exit.
//
// Usage (driven by corpus.SubprocessRunner, or by hand):
//
//	echo '{"version":1,"scenario":"userver-exp3","reports":["bug.report"],"max_runs":1500}' | shardworker
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"pathlog/internal/corpus"
	"pathlog/internal/fleet"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	resp := serve(ctx)
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(resp); err != nil {
		fmt.Fprintln(os.Stderr, "shardworker: encode response:", err)
		os.Exit(1)
	}
	if resp.Error != "" {
		os.Exit(1)
	}
}

// serve executes one shard request through the shared worker core
// (fleet.WorkerCore — the same engine cmd/shardworkerd serves over HTTP);
// every failure becomes a response-level error so the parent's transcript
// names what went wrong.
func serve(ctx context.Context) corpus.ShardResponse {
	var req corpus.ShardRequest
	if err := json.NewDecoder(os.Stdin).Decode(&req); err != nil {
		return corpus.ShardResponse{
			Version: corpus.ProtocolVersion,
			Error:   fmt.Sprintf("decode request: %v", err),
		}
	}
	var core fleet.WorkerCore
	return core.Execute(ctx, req)
}
