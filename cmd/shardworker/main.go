// Command shardworker is the out-of-process half of the corpus's sharded
// replay: it reads one JSON ShardRequest from stdin — a scenario name, a
// list of recording envelope paths and the replay bounds — replays each
// report in order, and writes one JSON ShardResponse to stdout with the
// per-report search results and plan-fingerprint-stamped profiles.
//
// The worker is deliberately dumb: it holds no plan store (the parent
// ships resolved version-2 envelopes with the plan embedded), applies no
// weights (weighting happens at the parent's verifying merge point), and
// makes no refinement decisions. Anything that goes wrong is reported in
// the response's error field and as a nonzero exit.
//
// Usage (driven by corpus.SubprocessRunner, or by hand):
//
//	echo '{"version":1,"scenario":"userver-exp3","reports":["bug.report"],"max_runs":1500}' | shardworker
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pathlog/internal/apps"
	"pathlog/internal/corpus"
	"pathlog/internal/instrument"
	"pathlog/internal/replay"
	"pathlog/internal/world"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	resp := serve(ctx)
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(resp); err != nil {
		fmt.Fprintln(os.Stderr, "shardworker: encode response:", err)
		os.Exit(1)
	}
	if resp.Error != "" {
		os.Exit(1)
	}
}

// serve executes one shard request; every failure becomes a response-level
// error so the parent's transcript names what went wrong.
func serve(ctx context.Context) corpus.ShardResponse {
	fail := func(format string, args ...any) corpus.ShardResponse {
		return corpus.ShardResponse{Version: corpus.ProtocolVersion, Error: fmt.Sprintf(format, args...)}
	}
	var req corpus.ShardRequest
	if err := json.NewDecoder(os.Stdin).Decode(&req); err != nil {
		return fail("decode request: %v", err)
	}
	if req.Version != corpus.ProtocolVersion {
		return fail("request speaks protocol %d, this worker speaks %d", req.Version, corpus.ProtocolVersion)
	}
	if len(req.Reports) == 0 {
		return fail("request names no reports")
	}
	s, err := apps.ScenarioByName(req.Scenario)
	if err != nil {
		return fail("%v", err)
	}
	opts := replay.Options{
		MaxRuns:    req.MaxRuns,
		TimeBudget: time.Duration(req.BudgetMS) * time.Millisecond,
		Workers:    req.Workers,
		PickFIFO:   req.PickFIFO,
	}
	resp := corpus.ShardResponse{
		Version:  corpus.ProtocolVersion,
		ProgHash: instrument.ProgramHash(s.Prog),
	}
	for _, path := range req.Reports {
		// The envelope must embed its plan and fit this worker's program —
		// a wrong-scenario request fails per report, by path.
		rec, err := replay.LoadRecordingFor(path, s.Prog)
		if err != nil {
			return fail("report %s: %v", path, err)
		}
		eng := replay.New(s.Prog, s.Spec, world.NewRegistry(), rec, opts)
		res := eng.Reproduce(ctx)
		resp.Results = append(resp.Results, corpus.ReportRun{
			Reproduced: res.Reproduced,
			TimedOut:   res.TimedOut,
			Cancelled:  res.Cancelled,
			Runs:       res.Runs,
			WallMS:     res.Elapsed.Milliseconds(),
			Profile:    res.Profile,
		})
		if err := ctx.Err(); err != nil {
			return fail("cancelled after %d of %d reports: %v", len(resp.Results), len(req.Reports), err)
		}
	}
	return resp
}
