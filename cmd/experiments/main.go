// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -exp table3
//	experiments -all
//
// Scale knobs (iterations, request counts, analysis budgets, replay cutoff)
// default to laptop scale; raise them to approach the paper's settings.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pathlog/internal/harness"
)

func main() {
	cfg := harness.DefaultConfig()
	var (
		exp  = flag.String("exp", "", "experiment to run (see -list)")
		all  = flag.Bool("all", false, "run every experiment")
		list = flag.Bool("list", false, "list experiment names")
	)
	flag.Int64Var(&cfg.MicroLoopIters, "loop-iters", cfg.MicroLoopIters,
		"counting-loop iterations (paper: 1e9)")
	flag.IntVar(&cfg.OverheadRounds, "rounds", cfg.OverheadRounds,
		"runs averaged per CPU-time figure")
	flag.IntVar(&cfg.UServerLoadRequests, "requests", cfg.UServerLoadRequests,
		"uServer load requests (paper: 5000)")
	flag.IntVar(&cfg.UServerAnalysisRunsLC, "lc-runs", cfg.UServerAnalysisRunsLC,
		"uServer low-coverage concolic runs (paper: 1 hour)")
	flag.IntVar(&cfg.UServerAnalysisRunsHC, "hc-runs", cfg.UServerAnalysisRunsHC,
		"uServer high-coverage concolic runs (paper: 2 hours)")
	flag.IntVar(&cfg.CoreutilAnalysisRuns, "coreutil-runs", cfg.CoreutilAnalysisRuns,
		"coreutil concolic runs")
	flag.IntVar(&cfg.DiffAnalysisRuns, "diff-runs", cfg.DiffAnalysisRuns,
		"diff concolic runs (low by design: §5.4 reports 20% coverage)")
	flag.IntVar(&cfg.ReplayMaxRuns, "replay-runs", cfg.ReplayMaxRuns,
		"replay run budget")
	flag.DurationVar(&cfg.ReplayBudget, "replay-budget", cfg.ReplayBudget,
		"replay wall-clock budget (the paper's 1-hour cutoff)")
	flag.IntVar(&cfg.ReplayWorkers, "replay-workers", cfg.ReplayWorkers,
		"concurrent replay workers per reproduction (1 = serial depth-first)")
	flag.IntVar(&cfg.AdaptiveTargetRuns, "adaptive-target-runs", cfg.AdaptiveTargetRuns,
		"replay-run target a generation of the adaptive experiment must meet")
	flag.IntVar(&cfg.AdaptiveMaxGenerations, "adaptive-max-generations", cfg.AdaptiveMaxGenerations,
		"refinement steps the adaptive experiment may take")
	flag.StringVar(&cfg.AdaptiveTrajectoryOut, "adaptive-trajectory-out", cfg.AdaptiveTrajectoryOut,
		"write the adaptive experiment's per-generation trajectory JSON here")
	flag.StringVar(&cfg.AdaptiveProfileOut, "adaptive-profile-out", cfg.AdaptiveProfileOut,
		"write the adaptive experiment's final search profile JSON here")
	flag.StringVar(&cfg.StoreDir, "store-dir", cfg.StoreDir,
		"plan store directory for the store experiment (left populated; empty = temp dir)")
	flag.IntVar(&cfg.CorpusNoisyReports, "corpus-noisy", cfg.CorpusNoisyReports,
		"duplicate noisy reports in the corpus experiment")
	flag.IntVar(&cfg.CorpusShards, "corpus-shards", cfg.CorpusShards,
		"shards the corpus experiment replays over")
	flag.StringVar(&cfg.CorpusShardCmd, "corpus-shard-cmd", cfg.CorpusShardCmd,
		"shard worker binary (cmd/shardworker) for out-of-process corpus shards; empty = in-process")
	flag.IntVar(&cfg.CorpusTargetRuns, "corpus-target-runs", cfg.CorpusTargetRuns,
		"corpus-mean replay-run target (0 = adaptive-target-runs)")
	flag.StringVar(&cfg.CorpusDir, "corpus-dir", cfg.CorpusDir,
		"directory for the corpus experiment's reports and store (left populated; empty = temp dir)")
	flag.StringVar(&cfg.CorpusTrajectoryOut, "corpus-trajectory-out", cfg.CorpusTrajectoryOut,
		"write the corpus experiment's per-generation trajectory JSON here")
	flag.StringVar(&cfg.CorpusProfileOut, "corpus-profile-out", cfg.CorpusProfileOut,
		"write the corpus experiment's final merged search profile JSON here")
	flag.IntVar(&cfg.FleetSites, "fleet-sites", cfg.FleetSites,
		"concurrent simulated user sites in the fleet experiment")
	flag.IntVar(&cfg.FleetReportsPerSite, "fleet-reports", cfg.FleetReportsPerSite,
		"reports each fleet site ships (duplicate-heavy mix)")
	flag.StringVar(&cfg.FleetDir, "fleet-dir", cfg.FleetDir,
		"directory for the fleet experiment's store and intake journal (left populated; empty = temp dir)")
	flag.StringVar(&cfg.FleetMetricsOut, "fleet-metrics-out", cfg.FleetMetricsOut,
		"write the fleet daemon's final /metrics snapshot JSON here")
	flag.Float64Var(&cfg.FleetDemotionRate, "fleet-demotion-rate", cfg.FleetDemotionRate,
		"disagreement-rate demotion threshold for the fleet balance (0 = strict)")
	flag.IntVar(&cfg.FleetReplayWorkers, "fleet-replay-workers", cfg.FleetReplayWorkers,
		"shard worker daemons the fleetreplay experiment balances over (floor 3)")
	flag.StringVar(&cfg.FleetReplayWorkerCmd, "fleet-replay-worker-cmd", cfg.FleetReplayWorkerCmd,
		"prebuilt cmd/shardworkerd binary for the fleetreplay experiment; empty builds one")
	flag.StringVar(&cfg.FleetReplayJournalOut, "fleet-replay-journal-out", cfg.FleetReplayJournalOut,
		"write the fleetreplay runner's event stream JSONL here")
	flag.StringVar(&cfg.FleetReplayMetricsOut, "fleet-replay-metrics-out", cfg.FleetReplayMetricsOut,
		"write the fleetreplay runner's final counters JSON here")
	flag.StringVar(&cfg.TraceFleetDir, "tracefleet-dir", cfg.TraceFleetDir,
		"directory for the tracefleet experiment's store, reports and per-process traces (left populated; empty = temp dir)")
	flag.StringVar(&cfg.TraceFleetTraceOut, "tracefleet-trace-out", cfg.TraceFleetTraceOut,
		"write the tracefleet experiment's merged cross-process span JSONL here")
	flag.StringVar(&cfg.TraceFleetMetricsOut, "tracefleet-metrics-out", cfg.TraceFleetMetricsOut,
		"write the tracefleet daemons' Prometheus /metrics scrapes here")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch {
	case *list:
		for _, name := range harness.Experiments {
			fmt.Println(name)
		}
	case *all:
		start := time.Now()
		if err := cfg.RunAll(ctx, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("all experiments completed in %s\n", time.Since(start).Round(time.Millisecond))
	case *exp != "":
		if err := cfg.Run(ctx, *exp, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
