package pathlog

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"pathlog/internal/instrument"
	"pathlog/internal/obs"
	"pathlog/internal/store"
)

// This file closes the paper's titular loop at the Session level. The
// workflow the paper actually proposes is iterative: deploy a cheap partial
// plan, and when developer-site replay takes too long, selectively add
// instrumentation at the branches responsible and re-deploy. Refine is one
// step of that loop; AutoBalance iterates record → replay → refine until
// the replay budget is met or the overhead ceiling is reached, returning
// the measured trajectory that Frontier can merge as ground truth next to
// its estimates.

// SearchProfile attributes one replay search's cost per branch site; the
// replay engine produces it (ReplayResult.Profile) and Refine consumes it.
type SearchProfile = instrument.SearchProfile

// BranchCost is the search cost charged to one branch site in a
// SearchProfile.
type BranchCost = instrument.BranchCost

// Refine performs one step of the adaptive loop: from a recording and the
// replay result measured under it, derive the next plan generation — the
// same branch set plus the top blowup branches the search profile blames
// for the search's length — priced under a cost model recalibrated with
// the observed per-branch rates. The returned plan carries lineage
// (Generation, Parent) and caches like any strategy-built plan.
//
// Refine refuses mismatches loudly: a recording that does not fit the
// session's program, a result with no profile, a profile measured under a
// different plan than the recording's, and a stale-generation recording —
// one taken under a plan this session or any earlier session over the
// same plan store has already refined past — are all errors, not silent
// rewinds of the loop. A stamped-only recording resolves its base plan
// from the plan store first, exactly as Replay does.
func (s *Session) Refine(ctx context.Context, rec *Recording, res *ReplayResult) (*Plan, error) {
	return s.RefineWith(ctx, rec, res, 0)
}

// RefineWith is Refine with an explicit promotion width (k <= 0 selects
// instrument.DefaultRefineTopK); AutoBalance threads its TopK through.
// With a plan store configured, both ends of the step are retained: the
// base plan the recording was taken under (resolved from the store when
// the recording is stamped-only) and the refined generation about to be
// deployed, so the store's lineage index stays complete.
func (s *Session) RefineWith(ctx context.Context, rec *Recording, res *ReplayResult, k int) (*Plan, error) {
	plan, base, err := s.refineStep(ctx, rec, res, k)
	if err != nil {
		return nil, err
	}
	if err := s.persistPlan(base); err != nil {
		return nil, fmt.Errorf("pathlog: retain base plan: %w", err)
	}
	if err := s.persistProfile(res.Profile); err != nil {
		return nil, fmt.Errorf("pathlog: retain search profile: %w", err)
	}
	// A fixed point (nothing promoted, identical branch set) is not a new
	// generation: advancing the lineage would mark the still-current base
	// plan stale and wedge every later refinement of it.
	if baseFP := base.Fingerprint(); plan.Fingerprint() != baseFP {
		s.recordLineage(baseFP, plan)
		if err := s.persistPlan(plan); err != nil {
			return nil, fmt.Errorf("pathlog: retain refined plan: %w", err)
		}
	}
	return plan, nil
}

// refineStep builds the refined plan without touching the lineage, so
// callers with their own acceptance checks (AutoBalance's overhead
// ceiling) can reject the plan before it becomes the chain's head. It
// returns the refined plan and the base plan it was derived from (the
// recording's embedded plan, or the retained plan a stamped-only
// recording resolves to).
func (s *Session) refineStep(ctx context.Context, rec *Recording, res *ReplayResult, k int) (*Plan, *Plan, error) {
	// Open (and lineage-seed) the plan store before the staleness check:
	// a chain an earlier session refined past must be refused even when
	// this session has not touched the store yet.
	if _, err := s.planStore(); err != nil {
		return nil, nil, err
	}
	// A stamped-only recording resolves its base plan from the store, the
	// same way Replay does.
	rec, err := s.resolveRecording(rec)
	if err != nil {
		return nil, nil, err
	}
	if err := s.validateRecording(rec); err != nil {
		return nil, nil, err
	}
	if res == nil || res.Profile == nil {
		return nil, nil, fmt.Errorf("pathlog: refine needs a replay result carrying a search profile")
	}
	base := rec.Plan
	baseFP := base.Fingerprint()
	if err := s.checkGenerationFresh(base, baseFP); err != nil {
		return nil, nil, err
	}
	strat, err := instrument.Refine(base, res.Profile, k)
	if err != nil {
		return nil, nil, err
	}
	in, err := s.Analyze(ctx)
	if err != nil {
		return nil, nil, err
	}
	// Fold the observed per-branch rates into the shared cost model before
	// pricing the refined plan: the refined generation's estimate is built
	// from measurement, not from the structural priors the base plan's was.
	s.planContext(in).Calibrate(res.Profile)
	plan, err := s.PlanWith(ctx, strat)
	if err != nil {
		return nil, nil, err
	}
	return plan, base, nil
}

// checkGenerationFresh refuses to refine a recording taken under a plan
// generation this session has already refined past.
func (s *Session) checkGenerationFresh(base *Plan, baseFP string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	root, ok := s.roots[baseFP]
	if !ok {
		root = baseFP
	}
	if latest, ok := s.latestGen[root]; ok && base.Generation < latest {
		return fmt.Errorf("pathlog: stale-generation recording: taken under generation %d plan %s, but this session has already refined that lineage to generation %d — record under the current plan and refine that recording",
			base.Generation, baseFP, latest)
	}
	return nil
}

// recordLineage files a refined plan under its chain's root and advances
// the chain's latest generation and plan.
func (s *Session) recordLineage(baseFP string, child *Plan) {
	s.mu.Lock()
	defer s.mu.Unlock()
	root, ok := s.roots[baseFP]
	if !ok {
		root = baseFP
		s.roots[baseFP] = root
	}
	s.roots[child.Fingerprint()] = root
	if child.Generation > s.latestGen[root] {
		s.latestGen[root] = child.Generation
		s.latestPlan[root] = child
		s.latestFP[root] = child.Fingerprint()
	}
}

// resumePlan returns the latest refined generation of the chain plan
// belongs to, or plan itself when the chain has not moved past it — so a
// second AutoBalance on the same session continues the loop instead of
// rewinding to generation 0 and tripping the staleness check. A chain
// advanced by an earlier session (known from the plan store's lineage
// index) resumes from the retained chain head fetched by fingerprint.
func (s *Session) resumePlan(plan *Plan) *Plan {
	// Opening the store seeds the lineage maps consulted below; an open
	// error is deliberately not fatal here — the caller's next store
	// operation (retaining the deployed plan) reports it loudly.
	s.planStore()
	s.mu.Lock()
	root, ok := s.roots[plan.Fingerprint()]
	if !ok {
		s.mu.Unlock()
		return plan
	}
	latest := s.latestPlan[root]
	latestGen := s.latestGen[root]
	latestFP := s.latestFP[root]
	s.mu.Unlock()
	if latest != nil && latest.Generation > plan.Generation {
		return latest
	}
	if latestGen > plan.Generation && latestFP != "" {
		// The chain head was built by an earlier session; fetch it from the
		// store. On a fetch failure the given plan stands, and the staleness
		// check will still refuse refining past generations loudly.
		if st, err := s.planStore(); err == nil && st != nil {
			if p, err := st.GetPlan(latestFP); err == nil {
				s.mu.Lock()
				s.latestPlan[root] = p
				s.mu.Unlock()
				return p
			}
		}
	}
	return plan
}

// DefaultMaxGenerations caps an AutoBalance loop that never meets its
// target: the paper's workflow converges in a handful of redeployments or
// not at all.
const DefaultMaxGenerations = 4

// BalanceOptions shape one AutoBalance loop.
type BalanceOptions struct {
	// TargetReplayRuns, when > 0, is the replay budget the loop works
	// toward: a generation whose search reproduces the bug within this many
	// runs converges the loop.
	TargetReplayRuns int
	// TargetReplayTime, when > 0, is the wall-clock form of the target;
	// both set means both must hold.
	TargetReplayTime time.Duration
	// MaxGenerations caps refinement steps (<= 0 selects
	// DefaultMaxGenerations). The trajectory holds at most
	// MaxGenerations+1 points: generation 0 plus one per refinement.
	MaxGenerations int
	// OverheadCeiling, when > 0, stops the loop before deploying a refined
	// plan whose estimated record overhead (bits/run, priced under the
	// calibrated cost model) exceeds it — the user-site half of the
	// balance.
	OverheadCeiling float64
	// TopK is the number of blowup branches promoted per generation
	// (<= 0 selects instrument.DefaultRefineTopK).
	TopK int
	// OnGeneration, when set, observes each generation's measured point as
	// soon as its replay finishes. Same contract as ProgressFunc: cheap,
	// no calls back into the Session.
	OnGeneration func(BalancePoint)
	// OnPhase, when set, observes each balance phase's wall time the
	// moment the phase finishes — record, replay, refine, merge. Same
	// contract as ProgressFunc. With WithObserver configured, the same
	// timings also land in the registry's
	// pathlog_balance_<phase>_ns histograms.
	OnPhase func(PhaseTiming)

	// The remaining fields apply only to CorpusBalance (AutoBalance
	// ignores them).

	// Shards partitions the corpus into this many concurrently-replayed
	// shards (<= 1 keeps one).
	Shards int
	// Runner replays each corpus shard; nil selects the in-process runner
	// under the session's replay options.
	Runner CorpusRunner
	// Workers fans corpus shards out over remote shard worker daemons
	// (cmd/shardworkerd), addressed as host:port or http URLs. Ignored when
	// Runner is set; empty falls back to WithFleet's pool, then to the
	// in-process runner. With workers set and Shards unset, the corpus is
	// partitioned one shard per worker.
	Workers []string
	// OnCorpusGeneration observes each corpus generation's measured point.
	// Same contract as ProgressFunc.
	OnCorpusGeneration func(CorpusPoint)
	// DemotionRate is the weighted demotion threshold: an instrumented
	// branch becomes a demotion candidate when its disagreement rate
	// (Disagreements over LoggedExecs) is at most this value
	// (instrument.DemotableAt). Zero — the default — keeps the strict
	// zero-disagreement rule. The measured-acceptance gate still applies
	// either way: a demoted plan whose replay regresses is refused by name.
	DemotionRate float64
}

// PhaseTiming is one timed phase of a balance generation — the loop's
// observability quantum. Phases: "record" (user-site deployment run over
// the workload or corpus), "replay" (developer-site search), "refine"
// (deriving and pricing the next generation's plan), "merge" (folding the
// generation's measured point and search profile into the plan store and
// trajectory).
type PhaseTiming struct {
	// Generation is the plan generation the phase ran under.
	Generation int
	// Phase names the phase: "record", "replay", "refine" or "merge".
	Phase string
	// Elapsed is the phase's wall time.
	Elapsed time.Duration
}

// balancePhaseBuckets span 1µs to ~18 minutes of phase wall time.
var balancePhaseBuckets = obs.ExpBuckets(1000, 4, 16)

// observePhase lands one finished balance phase in the session observer's
// registry (when attached) and the loop's OnPhase callback (when set).
func (s *Session) observePhase(on func(PhaseTiming), gen int, phase string, start time.Time) {
	d := time.Since(start)
	if reg := s.cfg.obs.Registry(); reg != nil {
		reg.Histogram("pathlog_balance_"+phase+"_ns", balancePhaseBuckets).
			Observe(float64(d.Nanoseconds()))
	}
	if on != nil {
		on(PhaseTiming{Generation: gen, Phase: phase, Elapsed: d})
	}
}

// BalancePoint is one generation of an AutoBalance trajectory: the
// deployed plan and what actually happened under it — measured logged
// bits, measured replay runs and wall time, not estimates.
type BalancePoint struct {
	// Generation is the plan's refinement generation (0 = the starting
	// strategy's plan).
	Generation int
	// Plan is the generation's deployed plan.
	Plan *Plan
	// OverheadBits is the number of bits the user-site record run logged
	// under the plan — the measured record overhead for this workload.
	OverheadBits int64
	// ReplayRuns and ReplayTime measure the developer-site search.
	ReplayRuns int
	ReplayTime time.Duration
	// Reproduced reports whether the search found the bug within budget.
	Reproduced bool
	// Recording and Result carry the full artifacts (Result.Profile is the
	// attribution the next generation was refined from).
	Recording *Recording
	Result    *ReplayResult
}

// BalanceTrajectory is an AutoBalance outcome: the per-generation measured
// points in order, whether the loop met its target, and why it stopped.
type BalanceTrajectory struct {
	Points    []BalancePoint
	Converged bool
	// Reason is a one-line human explanation of why the loop stopped.
	Reason string
}

// Final returns the last (best) generation's point, or nil for an empty
// trajectory.
func (tr *BalanceTrajectory) Final() *BalancePoint {
	if len(tr.Points) == 0 {
		return nil
	}
	return &tr.Points[len(tr.Points)-1]
}

// PlanPoints renders the trajectory as measured frontier points (Measured
// set, overhead and replay runs from the record and replay runs rather
// than the cost model), for MergeMeasured. Generations that did not
// reproduce are omitted: their run count is a budget-censored lower bound
// (the paper's ∞), not a measurement of debugging time.
func (tr *BalanceTrajectory) PlanPoints() []PlanPoint {
	out := make([]PlanPoint, 0, len(tr.Points))
	for _, pt := range tr.Points {
		if !pt.Reproduced {
			continue
		}
		out = append(out, PlanPoint{
			Strategy:   pt.Plan.Strategy,
			Plan:       pt.Plan,
			Overhead:   float64(pt.OverheadBits),
			ReplayRuns: float64(pt.ReplayRuns),
			Measured:   true,
		})
	}
	return out
}

// AutoBalance iterates the paper's feedback loop from the session's
// configured strategy: record the user run (nil selects WithUserBytes),
// replay the resulting bug report, and — while the replay budget is not
// met — refine the plan at the branches the search blames and go again.
//
// The loop stops when a generation reproduces within the target
// (Converged), when MaxGenerations refinements have been spent, when the
// next refined plan would break the overhead ceiling, or when the profile
// promotes nothing new (a fixed point). With no target set, convergence
// means reproducing at all within the session's replay budget — the
// paper's "replay took too long" workflow with the budget as the bar.
//
// The returned trajectory holds every generation's measured point even
// when the loop fails its target or the context cancels mid-loop; the
// error reports what stopped an unfinished loop. A session whose chain
// already advanced (an earlier AutoBalance or Refine) resumes from the
// chain's latest generation instead of redeploying generation 0.
func (s *Session) AutoBalance(ctx context.Context, user map[string][]byte, opts BalanceOptions) (*BalanceTrajectory, error) {
	if opts.TargetReplayRuns < 0 || opts.TargetReplayTime < 0 {
		return nil, fmt.Errorf("pathlog: AutoBalance: negative replay target (runs %d, time %v)",
			opts.TargetReplayRuns, opts.TargetReplayTime)
	}
	if opts.OverheadCeiling < 0 {
		return nil, fmt.Errorf("pathlog: AutoBalance: negative overhead ceiling %g", opts.OverheadCeiling)
	}
	maxGen := opts.MaxGenerations
	if maxGen <= 0 {
		maxGen = DefaultMaxGenerations
	}
	tr := &BalanceTrajectory{}
	plan, err := s.Plan(ctx)
	if err != nil {
		return tr, err
	}
	// A session that already refined this strategy's chain resumes from
	// the latest generation rather than redeploying generation 0.
	plan = s.resumePlan(plan)
	for {
		// Each generation's measurement (record + replay) runs under one
		// span, so the trajectory's wall time decomposes in the trace.
		gctx, span := s.cfg.obs.Tracer().StartSpan(ctx, "balance.generation")
		span.SetAttr("gen", fmt.Sprint(plan.Generation))
		phaseStart := time.Now()
		rec, stats, err := s.RecordWith(gctx, plan, user)
		s.observePhase(opts.OnPhase, plan.Generation, "record", phaseStart)
		if err != nil {
			span.End()
			return tr, err
		}
		if rec == nil {
			span.End()
			return tr, fmt.Errorf("pathlog: AutoBalance: user run did not crash under plan %s (generation %d) — nothing to replay",
				plan.Strategy, plan.Generation)
		}
		phaseStart = time.Now()
		res, err := s.Replay(gctx, rec)
		s.observePhase(opts.OnPhase, plan.Generation, "replay", phaseStart)
		span.End()
		if err != nil {
			return tr, err
		}
		pt := BalancePoint{
			Generation:   plan.Generation,
			Plan:         plan,
			OverheadBits: stats.TraceBits,
			ReplayRuns:   res.Runs,
			ReplayTime:   res.Elapsed,
			Reproduced:   res.Reproduced,
			Recording:    rec,
			Result:       res,
		}
		tr.Points = append(tr.Points, pt)
		s.emit("balance", len(tr.Points))
		phaseStart = time.Now()
		if err := s.appendMeasured(pt); err != nil {
			tr.Reason = "plan store write failed"
			return tr, fmt.Errorf("pathlog: AutoBalance: persist measured point: %w", err)
		}
		// Retain the generation's search profile so cold sessions can
		// CalibrateCosts from it before their first sweep.
		if err := s.persistProfile(res.Profile); err != nil {
			tr.Reason = "plan store write failed"
			return tr, fmt.Errorf("pathlog: AutoBalance: retain search profile: %w", err)
		}
		s.observePhase(opts.OnPhase, plan.Generation, "merge", phaseStart)
		if opts.OnGeneration != nil {
			opts.OnGeneration(pt)
		}
		if targetMet(res, opts) {
			tr.Converged = true
			tr.Reason = fmt.Sprintf("replay budget met at generation %d (%d runs in %s)",
				plan.Generation, res.Runs, res.Elapsed.Round(time.Millisecond))
			return tr, nil
		}
		if err := ctx.Err(); err != nil {
			tr.Reason = "context cancelled"
			return tr, err
		}
		if plan.Generation >= maxGen {
			tr.Reason = fmt.Sprintf("generation cap (%d) reached without meeting the replay target", maxGen)
			return tr, nil
		}
		// The refined plan only becomes the chain's head once it passes
		// every acceptance check: a plan the loop rejects here was never
		// deployed, must not mark its base stale, and must not be what a
		// later AutoBalance resumes from.
		phaseStart = time.Now()
		refined, base, err := s.refineStep(ctx, rec, res, opts.TopK)
		if err != nil {
			return tr, err
		}
		s.observePhase(opts.OnPhase, plan.Generation, "refine", phaseStart)
		if refined.Fingerprint() == plan.Fingerprint() {
			tr.Reason = fmt.Sprintf("fixed point at generation %d: the profile blames no promotable branch", plan.Generation)
			return tr, nil
		}
		if opts.OverheadCeiling > 0 && refined.EstimatedOverhead() > opts.OverheadCeiling {
			tr.Reason = fmt.Sprintf("overhead ceiling: generation %d would cost ~%.0f bits/run (ceiling %.0f)",
				refined.Generation, refined.EstimatedOverhead(), opts.OverheadCeiling)
			return tr, nil
		}
		s.recordLineage(base.Fingerprint(), refined)
		if err := s.persistPlan(refined); err != nil {
			tr.Reason = "plan store write failed"
			return tr, fmt.Errorf("pathlog: AutoBalance: retain refined plan: %w", err)
		}
		plan = refined
	}
}

// appendMeasured persists one AutoBalance generation's measured point to
// the session's plan store (a no-op without WithPlanStore). Points are
// keyed by (program hash, workload hash) — the WorkloadHash identity, so
// renamed sessions keep appending to one history; non-reproduced
// generations are stored too — as budget-censored history — but frontier
// merging skips them. A plan with no program hash cannot reach here:
// RecordWith already refused to deploy it through a store-backed session.
func (s *Session) appendMeasured(pt BalancePoint) error {
	st, err := s.planStore()
	if err != nil || st == nil {
		return err
	}
	return st.AppendMeasured(pt.Plan.ProgHash, s.WorkloadHash(), store.MeasuredPoint{
		Fingerprint:  pt.Plan.Fingerprint(),
		Strategy:     pt.Plan.Strategy,
		Generation:   pt.Generation,
		OverheadBits: pt.OverheadBits,
		ReplayRuns:   pt.ReplayRuns,
		ReplayMS:     pt.ReplayTime.Milliseconds(),
		Reproduced:   pt.Reproduced,
	})
}

// targetMet checks a generation's replay against the loop's target.
func targetMet(res *ReplayResult, opts BalanceOptions) bool {
	if !res.Reproduced {
		return false
	}
	if opts.TargetReplayRuns > 0 && res.Runs > opts.TargetReplayRuns {
		return false
	}
	if opts.TargetReplayTime > 0 && res.Elapsed > opts.TargetReplayTime {
		return false
	}
	return true
}

// balancePointJSON is the persisted shape of one trajectory point: the
// measured numbers and the plan identity, not the full artifacts.
type balancePointJSON struct {
	Generation   int     `json:"generation"`
	Strategy     string  `json:"strategy"`
	Fingerprint  string  `json:"fingerprint"`
	Parent       string  `json:"parent,omitempty"`
	Instrumented int     `json:"instrumented_locations"`
	OverheadBits int64   `json:"overhead_bits"`
	EstOverhead  float64 `json:"est_overhead_bits_per_run"`
	EstReplay    float64 `json:"est_replay_runs"`
	ReplayRuns   int     `json:"replay_runs"`
	ReplayMS     int64   `json:"replay_ms"`
	Reproduced   bool    `json:"reproduced"`
}

type trajectoryJSON struct {
	Converged bool               `json:"converged"`
	Reason    string             `json:"reason"`
	Points    []balancePointJSON `json:"points"`
}

// Save writes the trajectory's measured points to path as JSON — the
// artifact the harness's adaptive experiment and cmd/tune publish.
func (tr *BalanceTrajectory) Save(path string) error {
	enc := trajectoryJSON{Converged: tr.Converged, Reason: tr.Reason}
	for _, pt := range tr.Points {
		enc.Points = append(enc.Points, balancePointJSON{
			Generation:   pt.Generation,
			Strategy:     pt.Plan.Strategy,
			Fingerprint:  pt.Plan.Fingerprint(),
			Parent:       pt.Plan.Parent,
			Instrumented: pt.Plan.NumInstrumented(),
			OverheadBits: pt.OverheadBits,
			EstOverhead:  pt.Plan.EstimatedOverhead(),
			EstReplay:    pt.Plan.EstimatedReplayRuns(),
			ReplayRuns:   pt.ReplayRuns,
			ReplayMS:     pt.ReplayTime.Milliseconds(),
			Reproduced:   pt.Reproduced,
		})
	}
	data, err := json.MarshalIndent(enc, "", "  ")
	if err != nil {
		return fmt.Errorf("pathlog: encode trajectory: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}
